"""Property-based tests: incremental snapshot deltas ≡ full re-freeze.

For *any* sequence of store mutation batches — public adds/moves/removes,
private single and bulk region publications, removals, re-additions of a
previously removed id — a snapshot evolved by
:meth:`ServerSnapshot.absorb` must describe exactly the same world as a
fresh :meth:`ServerSnapshot.capture`: same id sets, same per-id
coordinates and region bounds, same store version counters, and the same
public-grid occupancy (the delta path may legally order rows differently,
so equality is id-aligned, not positional).  When the bounded changelog
no longer covers the gap, ``absorb`` must refuse (return ``None``) rather
than guess.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.server import LocationServer
from repro.core.stores import CHANGELOG_KEEP
from repro.engine.snapshot import ServerSnapshot
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import Telemetry

coord = st.integers(min_value=0, max_value=20).map(float)
public_pool = [f"p{i}" for i in range(8)]
private_pool = [f"r{i}" for i in range(8)]


@st.composite
def small_rects(draw) -> Rect:
    x0 = draw(coord)
    y0 = draw(coord)
    return Rect(x0, y0, x0 + draw(coord), y0 + draw(coord))


@st.composite
def mutations(draw) -> tuple:
    kind = draw(
        st.sampled_from(
            ["pub_set", "pub_remove", "priv_set", "priv_bulk", "priv_remove"]
        )
    )
    if kind == "pub_set":
        return kind, draw(st.sampled_from(public_pool)), Point(
            draw(coord), draw(coord)
        )
    if kind == "pub_remove":
        return kind, draw(st.sampled_from(public_pool)), None
    if kind == "priv_set":
        return kind, draw(st.sampled_from(private_pool)), draw(small_rects())
    if kind == "priv_bulk":
        ids = draw(
            st.lists(
                st.sampled_from(private_pool), min_size=1, max_size=6, unique=True
            )
        )
        return kind, ids, [draw(small_rects()) for _ in ids]
    return kind, draw(st.sampled_from(private_pool)), None


def apply_mutation(server: LocationServer, mutation: tuple) -> None:
    kind, target, payload = mutation
    if kind == "pub_set":
        if target in server.public:
            server.move_public_object(target, payload)
        else:
            server.add_public_object(target, payload)
    elif kind == "pub_remove":
        if target in server.public:
            server.remove_public_object(target)
    elif kind == "priv_set":
        server.receive_region(target, payload)
    elif kind == "priv_bulk":
        server.receive_regions(dict(zip(target, payload)))
    elif kind == "priv_remove":
        if target in server.private:
            server.forget_region(target)


def assert_equivalent(absorbed: ServerSnapshot, fresh: ServerSnapshot) -> None:
    assert absorbed.public_version == fresh.public_version
    assert absorbed.private_version == fresh.private_version
    assert set(absorbed.public_ids) == set(fresh.public_ids)
    assert set(absorbed.private_ids) == set(fresh.private_ids)
    for object_id in fresh.public_ids:
        row_a = absorbed.public_rank[object_id]
        row_f = fresh.public_rank[object_id]
        assert absorbed.public_xs[row_a] == fresh.public_xs[row_f]
        assert absorbed.public_ys[row_a] == fresh.public_ys[row_f]
    for object_id in fresh.private_ids:
        row_a = absorbed.private_rank[object_id]
        row_f = fresh.private_rank[object_id]
        assert np.array_equal(
            absorbed.private_bounds[row_a], fresh.private_bounds[row_f]
        )
    # Same point multiset => same grid occupancy, regardless of row order.
    keys_a = np.sort(absorbed.public_xs + 1e6 * absorbed.public_ys)
    keys_f = np.sort(fresh.public_xs + 1e6 * fresh.public_ys)
    assert np.array_equal(keys_a, keys_f)


@settings(max_examples=60, deadline=None)
@given(
    setup=st.lists(mutations(), max_size=10),
    batches=st.lists(
        st.lists(mutations(), min_size=1, max_size=8), min_size=1, max_size=5
    ),
)
def test_absorb_equals_refreeze(setup, batches):
    server = LocationServer(telemetry=Telemetry(enabled=False))
    for mutation in setup:
        apply_mutation(server, mutation)
    snapshot = ServerSnapshot.capture(server)
    _ = snapshot.public_grid  # exercise grid sharing on quiet public sides
    for batch in batches:
        for mutation in batch:
            apply_mutation(server, mutation)
        absorbed = snapshot.absorb(server)
        fresh = ServerSnapshot.capture(server)
        assert absorbed is not None
        assert_equivalent(absorbed, fresh)
        for array in (
            absorbed.public_xs, absorbed.public_ys, absorbed.private_bounds
        ):
            assert not array.flags.writeable
        snapshot = absorbed


def test_absorb_refuses_truncated_gap():
    server = LocationServer(telemetry=Telemetry(enabled=False))
    server.receive_region("r0", Rect(0.0, 0.0, 1.0, 1.0))
    snapshot = ServerSnapshot.capture(server)
    for _ in range(CHANGELOG_KEEP + 1):
        server.receive_region("r0", Rect(0.0, 0.0, 2.0, 2.0))
    assert snapshot.absorb(server) is None


def test_absorb_shares_grid_when_public_quiet():
    server = LocationServer(telemetry=Telemetry(enabled=False))
    server.add_public_object("p0", Point(1.0, 1.0))
    server.receive_region("r0", Rect(0.0, 0.0, 1.0, 1.0))
    snapshot = ServerSnapshot.capture(server)
    grid = snapshot.public_grid
    server.receive_region("r0", Rect(0.0, 0.0, 2.0, 2.0))
    absorbed = snapshot.absorb(server)
    assert absorbed is not None
    assert absorbed.public_grid is grid
    # A public mutation must invalidate the shared grid.
    server.move_public_object("p0", Point(5.0, 5.0))
    absorbed2 = absorbed.absorb(server)
    assert absorbed2 is not None
    assert "public_grid" not in absorbed2.__dict__
