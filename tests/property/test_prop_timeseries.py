"""Streaming window statistics agree with batch oracles (hypothesis).

The windowed quantile estimator never sees raw samples — only per-bucket
count deltas — so the conformance bar is *bucket agreement*: the
estimate must land in exactly the half-open bucket ``(lo, hi]`` that
contains the true rank statistic, computed here by numpy's
``inverted_cdf`` quantile (the same ``rank = ceil(q * n)`` statistic).
"""

from bisect import bisect_left

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Telemetry
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram
from repro.obs.timeseries import TimeSeriesStore, window_quantile


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


values_strategy = st.lists(
    st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=80,
)

quantile_strategy = st.floats(min_value=0.0, max_value=1.0)


def bucket_deltas(values):
    """One window's deltas via the real ingestion path."""
    hist = Histogram()
    for value in values:
        hist.observe(value)
    return hist.bucket_counts


@given(values_strategy, quantile_strategy)
@settings(max_examples=200, deadline=None)
def test_window_quantile_lands_in_the_oracle_bucket(values, q):
    oracle = float(np.quantile(values, q, method="inverted_cdf"))
    estimate = window_quantile(DEFAULT_BUCKETS, bucket_deltas(values), q)
    oracle_bucket = bisect_left(DEFAULT_BUCKETS, oracle)
    estimate_bucket = bisect_left(DEFAULT_BUCKETS, estimate)
    assert estimate_bucket == oracle_bucket
    # And the estimate interpolates inside the bucket, not at a pole.
    lo = DEFAULT_BUCKETS[oracle_bucket - 1] if oracle_bucket >= 1 else 0.0
    assert lo < estimate <= DEFAULT_BUCKETS[oracle_bucket]


@given(
    st.lists(
        st.floats(min_value=3e6, max_value=1e12, allow_nan=False),
        min_size=1,
        max_size=10,
    ),
    st.floats(min_value=0.5, max_value=1.0),
)
@settings(max_examples=50, deadline=None)
def test_overflow_samples_report_the_last_bound(values, q):
    # All values beyond the bucket ladder: the estimator can only say
    # "at least the last bound" — and must say exactly that.
    estimate = window_quantile(DEFAULT_BUCKETS, bucket_deltas(values), q)
    assert estimate == DEFAULT_BUCKETS[-1]


@given(values_strategy)
@settings(max_examples=100, deadline=None)
def test_cumulative_deltas_equal_batch_cdf_at_every_bound(values):
    deltas = bucket_deltas(values)
    cumulative = 0
    for i, bound in enumerate(DEFAULT_BUCKETS):
        cumulative += deltas[i]
        assert cumulative == sum(1 for v in values if v <= bound)
    assert sum(deltas) == len(values)


@given(
    st.lists(
        st.lists(
            st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
            min_size=0,
            max_size=20,
        ),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=50, deadline=None)
def test_window_deltas_sum_to_cumulative_totals(chunks):
    telemetry = Telemetry()
    clock = FakeClock()
    store = TimeSeriesStore(telemetry, interval=1.0, keep=32, clock=clock)
    windows = []
    for chunk in chunks:
        for value in chunk:
            telemetry.observe("latency", value)
            telemetry.count("observations")
        clock.t += 1.0
        windows.append(store.sample())

    hist = telemetry.registry.histogram("latency")
    windowed_counts = [
        w.histograms.get("latency", {"count": 0})["count"] for w in windows
    ]
    assert sum(windowed_counts) == hist.count == sum(map(len, chunks))
    assert windowed_counts == [len(chunk) for chunk in chunks]
    windowed_sums = [
        w.histograms.get("latency", {"sum": 0.0})["sum"] for w in windows
    ]
    assert sum(windowed_sums) == float(
        np.sum([v for chunk in chunks for v in chunk], dtype=float)
    ) or abs(
        sum(windowed_sums) - sum(v for chunk in chunks for v in chunk)
    ) < 1e-6 * max(1.0, hist.total)
    counter_deltas = [w.counters.get("observations", 0) for w in windows]
    assert sum(counter_deltas) == sum(map(len, chunks))


@given(values_strategy)
@settings(max_examples=100, deadline=None)
def test_single_window_stats_match_batch_exactly(values):
    telemetry = Telemetry()
    clock = FakeClock()
    store = TimeSeriesStore(telemetry, interval=1.0, keep=4, clock=clock)
    for value in values:
        telemetry.observe("latency", value)
    clock.t = 1.0
    window = store.sample()
    stats = window.histograms["latency"]
    assert stats["count"] == len(values)
    assert abs(stats["sum"] - sum(values)) <= 1e-9 * max(1.0, sum(values))
    assert abs(stats["mean"] - np.mean(values)) <= 1e-9 * max(
        1.0, abs(float(np.mean(values)))
    )
    # The three shipped percentiles obey the same bucket-agreement bar.
    for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
        oracle = float(np.quantile(values, q, method="inverted_cdf"))
        oracle_bucket = min(
            bisect_left(DEFAULT_BUCKETS, oracle), len(DEFAULT_BUCKETS) - 1
        )
        estimate_bucket = min(
            bisect_left(DEFAULT_BUCKETS, stats[key]), len(DEFAULT_BUCKETS) - 1
        )
        assert estimate_bucket == oracle_bucket
