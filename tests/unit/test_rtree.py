"""Unit tests for the from-scratch R-tree."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.rtree import RTree


def brute_range(points, window):
    return sorted(i for i, p in points.items() if window.contains_point(p))


def brute_knn(points, q, k):
    return sorted(points, key=lambda i: points[i].distance_to(q))[:k]


@pytest.fixture
def loaded(uniform_points_500):
    tree = RTree(max_entries=8)
    points = dict(enumerate(uniform_points_500))
    for i, p in points.items():
        tree.insert(i, Rect.from_point(p))
    return tree, points


class TestConstruction:
    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)

    def test_invalid_min_entries(self):
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.range_query(Rect(0, 0, 100, 100)) == []
        assert tree.nearest(Point(0, 0), k=3) == []


class TestInsert:
    def test_duplicate_id_raises(self):
        tree = RTree()
        tree.insert("a", Rect(0, 0, 1, 1))
        with pytest.raises(ValueError, match="duplicate"):
            tree.insert("a", Rect(2, 2, 3, 3))

    def test_len_tracks_inserts(self, loaded):
        tree, points = loaded
        assert len(tree) == len(points)

    def test_geometry_of(self, loaded):
        tree, points = loaded
        assert tree.geometry_of(7) == Rect.from_point(points[7])

    def test_geometry_of_missing_raises(self):
        with pytest.raises(KeyError):
            RTree().geometry_of("nope")

    def test_contains(self, loaded):
        tree, _ = loaded
        assert 3 in tree
        assert "ghost" not in tree

    def test_tree_height_grows_logarithmically(self, loaded):
        tree, _ = loaded
        assert 2 <= tree.height <= 6


class TestRangeQuery:
    @pytest.mark.parametrize(
        "window",
        [
            Rect(0, 0, 100, 100),
            Rect(10, 10, 30, 30),
            Rect(50, 50, 50.5, 50.5),
            Rect(95, 95, 200, 200),
            Rect(-50, -50, -1, -1),
        ],
    )
    def test_matches_brute_force(self, loaded, window):
        tree, points = loaded
        assert sorted(tree.range_query(window)) == brute_range(points, window)

    def test_rect_entries(self):
        tree = RTree()
        tree.insert("a", Rect(0, 0, 10, 10))
        tree.insert("b", Rect(20, 20, 30, 30))
        assert tree.range_query(Rect(5, 5, 25, 25)) and set(
            tree.range_query(Rect(5, 5, 25, 25))
        ) == {"a", "b"}
        assert tree.range_query(Rect(11, 11, 19, 19)) == []


class TestNearest:
    def test_k1_matches_brute_force(self, loaded, rng):
        tree, points = loaded
        for _ in range(20):
            q = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            assert tree.nearest(q, 1) == brute_knn(points, q, 1)

    def test_k10_matches_brute_force_set(self, loaded, rng):
        tree, points = loaded
        q = Point(33.3, 66.6)
        got = tree.nearest(q, 10)
        expected = brute_knn(points, q, 10)
        # Order must be nearest-first; ties may permute, so compare dists.
        got_d = [points[i].distance_to(q) for i in got]
        exp_d = [points[i].distance_to(q) for i in expected]
        assert got_d == pytest.approx(exp_d)

    def test_k_exceeds_size(self):
        tree = RTree()
        tree.insert("a", Rect(0, 0, 0, 0))
        assert tree.nearest(Point(1, 1), k=5) == ["a"]

    def test_invalid_k(self, loaded):
        tree, _ = loaded
        with pytest.raises(ValueError):
            tree.nearest(Point(0, 0), k=0)

    def test_nearest_iter_is_sorted(self, loaded):
        tree, _ = loaded
        dists = [d for _, d in zip(range(50), (d for _, d in tree.nearest_iter(Point(50, 50))))]
        assert dists == sorted(dists)

    def test_nearest_iter_exhausts_all(self, loaded):
        tree, points = loaded
        seen = [i for i, _ in tree.nearest_iter(Point(0, 0))]
        assert sorted(seen) == sorted(points)


class TestDelete:
    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            RTree().delete("nope")

    def test_delete_then_query(self, loaded):
        tree, points = loaded
        for i in range(0, 500, 2):
            tree.delete(i)
        assert len(tree) == 250
        window = Rect(0, 0, 100, 100)
        remaining = {i: p for i, p in points.items() if i % 2 == 1}
        assert sorted(tree.range_query(window)) == brute_range(remaining, window)

    def test_delete_everything(self, loaded):
        tree, points = loaded
        for i in points:
            tree.delete(i)
        assert len(tree) == 0
        assert tree.range_query(Rect(0, 0, 100, 100)) == []
        # Tree is reusable after emptying.
        tree.insert("fresh", Rect(1, 1, 2, 2))
        assert tree.range_query(Rect(0, 0, 3, 3)) == ["fresh"]

    def test_update_moves_entry(self, loaded):
        tree, points = loaded
        tree.update(0, Rect.from_point(Point(99.5, 99.5)))
        assert 0 in tree.range_query(Rect(99, 99, 100, 100))
        assert 0 not in tree.range_query(Rect.from_center(points[0], 0.1, 0.1)) or (
            points[0].distance_to(Point(99.5, 99.5)) < 0.1
        )


class TestBulkLoad:
    def test_matches_brute_force(self, uniform_points_500):
        items = {i: Rect.from_point(p) for i, p in enumerate(uniform_points_500)}
        tree = RTree.bulk_load(items)
        assert len(tree) == 500
        points = dict(enumerate(uniform_points_500))
        for window in [Rect(0, 0, 100, 100), Rect(20, 35, 55, 60)]:
            assert sorted(tree.range_query(window)) == brute_range(points, window)

    def test_knn_after_bulk_load(self, uniform_points_500):
        items = {i: Rect.from_point(p) for i, p in enumerate(uniform_points_500)}
        tree = RTree.bulk_load(items)
        points = dict(enumerate(uniform_points_500))
        q = Point(42, 77)
        got = [points[i].distance_to(q) for i in tree.nearest(q, 8)]
        assert got == pytest.approx(
            sorted(p.distance_to(q) for p in points.values())[:8]
        )

    def test_packed_tree_no_taller_than_incremental(self, uniform_points_500):
        items = {i: Rect.from_point(p) for i, p in enumerate(uniform_points_500)}
        packed = RTree.bulk_load(items, max_entries=8)
        incremental = RTree(max_entries=8)
        for i, r in items.items():
            incremental.insert(i, r)
        assert packed.height <= incremental.height

    def test_dynamic_ops_after_bulk_load(self, uniform_points_500):
        items = {i: Rect.from_point(p) for i, p in enumerate(uniform_points_500)}
        tree = RTree.bulk_load(items)
        for i in range(100):
            tree.delete(i)
        tree.insert("late", Rect.from_point(Point(50, 50)))
        assert len(tree) == 401
        assert "late" in tree.range_query(Rect(49, 49, 51, 51))

    def test_empty_and_tiny(self):
        assert len(RTree.bulk_load({})) == 0
        tiny = RTree.bulk_load({"a": Rect(1, 1, 2, 2), "b": Rect(5, 5, 6, 6)})
        assert sorted(tiny.range_query(Rect(0, 0, 10, 10))) == ["a", "b"]

    def test_rect_entries_supported(self):
        items = {i: Rect(i, 0, i + 5, 5) for i in range(50)}
        tree = RTree.bulk_load(items, max_entries=4)
        assert sorted(tree.range_query(Rect(0, 0, 3, 3))) == [0, 1, 2, 3]


class TestInterleavedWorkload:
    def test_random_insert_delete_query(self, rng):
        tree = RTree(max_entries=6)
        reference: dict[int, Point] = {}
        next_id = 0
        for _ in range(1500):
            op = rng.random()
            if op < 0.55 or not reference:
                p = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
                tree.insert(next_id, Rect.from_point(p))
                reference[next_id] = p
                next_id += 1
            elif op < 0.8:
                victim = list(reference)[int(rng.integers(len(reference)))]
                tree.delete(victim)
                del reference[victim]
            else:
                cx, cy = rng.uniform(0, 100, 2)
                window = Rect.from_center(Point(float(cx), float(cy)), 20, 20)
                assert sorted(tree.range_query(window)) == brute_range(
                    reference, window
                )
        assert len(tree) == len(reference)
