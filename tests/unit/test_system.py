"""Unit tests for the end-to-end PrivacySystem."""

import pytest

from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.errors import RegistrationError
from repro.core.profiles import PrivacyProfile
from repro.core.system import PrivacySystem
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.users import MobileUser, UserMode

BOUNDS = Rect(0, 0, 100, 100)


@pytest.fixture
def system(uniform_points_500):
    system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=6))
    for i, p in enumerate(uniform_points_500):
        system.add_user(MobileUser(i, p, PrivacyProfile.always(k=10)))
    for j in range(50):
        system.add_poi(("poi", j), Point(2.0 * j, (7.0 * j) % 100))
    return system


class TestSetup:
    def test_duplicate_user_raises(self, system, uniform_points_500):
        with pytest.raises(RegistrationError):
            system.add_user(MobileUser(0, uniform_points_500[0]))

    def test_passive_user_not_registered(self):
        system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=4))
        system.add_user(
            MobileUser("ghost", Point(1, 1), mode=UserMode.PASSIVE)
        )
        assert system.anonymizer.registered_users() == []

    def test_mode_switch_registers_and_unregisters(self, system, uniform_points_500):
        system.set_mode(0, UserMode.PASSIVE)
        assert 0 not in system.anonymizer.registered_users()
        system.set_mode(0, UserMode.ACTIVE)
        assert 0 in system.anonymizer.registered_users()

    def test_passive_users_dont_lend_anonymity(self, uniform_points_500):
        system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=6))
        for i, p in enumerate(uniform_points_500):
            mode = UserMode.PASSIVE if i % 2 else UserMode.ACTIVE
            system.add_user(
                MobileUser(i, p, PrivacyProfile.always(k=10), mode=mode)
            )
        assert system.anonymizer.cloaker.user_count() == 250


class TestMovement:
    def test_apply_movement_updates_everything(self, system, uniform_points_500):
        system.apply_movement({0: Point(50, 50)}, dt=1.0)
        assert system.users[0].location == Point(50, 50)
        assert system.anonymizer.cloaker.location_of(0) == Point(50, 50)
        pseudonym = system.anonymizer.pseudonym_of(0)
        region = system.server.private.region_of(pseudonym)
        assert region.contains_point(Point(50, 50))
        assert system.clock == 1.0

    def test_publish_all_populates_server(self, system):
        system.publish_all()
        assert len(system.server.private) == 500


class TestQueries:
    def test_range_query_is_exact_after_refinement(self, system):
        outcome, refined = system.user_range_query(3, radius=12.0)
        assert outcome.correct
        assert outcome.candidates >= outcome.answer_size
        assert outcome.overhead >= 1.0 or outcome.answer_size == 0

    def test_nn_query_is_exact_after_refinement(self, system):
        outcome, answer = system.user_nn_query(3)
        assert outcome.correct
        assert answer == system.server.public.nearest(
            system.users[3].location, k=1
        )[0]

    def test_query_switches_mode(self, system):
        system.user_nn_query(5)
        assert system.users[5].mode is UserMode.QUERY

    def test_passive_user_cannot_query(self, system):
        system.set_mode(9, UserMode.PASSIVE)
        with pytest.raises(RegistrationError, match="passive"):
            system.user_range_query(9, radius=5.0)

    def test_ledger_accumulates(self, system):
        system.user_range_query(1, radius=5.0)
        system.user_range_query(2, radius=5.0)
        system.user_nn_query(3)
        summary = system.ledger.summary()
        assert summary["range_queries"] == 2
        assert summary["nn_queries"] == 1
        assert summary["range_accuracy"] == 1.0
        assert summary["nn_accuracy"] == 1.0
        assert summary["mean_cloak_area"] > 0

    def test_empty_ledger_summary(self):
        system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=4))
        assert system.ledger.summary() == {}


class TestPrivacyQosTension:
    def test_higher_k_means_more_candidates(self, uniform_points_500):
        candidate_means = []
        for k in (2, 50):
            system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=6))
            for i, p in enumerate(uniform_points_500):
                system.add_user(MobileUser(i, p, PrivacyProfile.always(k=k)))
            for j in range(80):
                system.add_poi(("poi", j), Point((13 * j) % 100, (29 * j) % 100))
            for victim in range(10):
                system.user_range_query(victim, radius=8.0)
            candidate_means.append(
                system.ledger.summary()["range_mean_candidates"]
            )
        assert candidate_means[1] > candidate_means[0]
