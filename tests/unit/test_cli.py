"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, _as_tables, _run_ids, build_parser, main
from repro.evalx.tables import Table


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_defaults_to_all(self):
        args = build_parser().parse_args(["experiments"])
        assert args.ids == ["all"]

    def test_report_output_flag(self):
        args = build_parser().parse_args(["report", "-o", "out.md"])
        assert args.output == "out.md"


class TestHelpers:
    def test_as_tables_single(self):
        table = Table("t", ["a"])
        assert _as_tables(table) == [table]

    def test_as_tables_tuple(self):
        tables = (Table("t1", ["a"]), Table("t2", ["b"]))
        assert _as_tables(tables) == list(tables)

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            _run_ids(["E99"])

    def test_unknown_experiment_message_lists_choices(self):
        with pytest.raises(SystemExit, match="E1.*E14.*'all'"):
            main(["experiments", "E99"])

    def test_registry_covers_e1_to_e14(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 15)}


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "correct: True" in out

    def test_experiments_e1(self, capsys):
        assert main(["experiments", "E1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "1000" in out

    def test_experiment_id_case_insensitive(self, capsys):
        assert main(["experiments", "e1"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys, monkeypatch):
        # Restrict the registry so the test stays fast.
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "EXPERIMENTS", {"E1": cli.EXPERIMENTS["E1"]}
        )
        target = tmp_path / "tables.md"
        assert main(["report", "-o", str(target)]) == 0
        content = target.read_text()
        assert "| time | k |" in content or "| time" in content
        assert "Figure 2" in content


class TestObsCommand:
    ARGS = ["obs", "--users", "40", "--queries", "4"]

    def test_json_round_trips(self, capsys):
        import json

        assert main([*self.ARGS, "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["server"]["queries_private_range"] == 4
        assert "query.private_range" in snapshot["stages"]
        stage = snapshot["stages"]["query.private_range"]
        assert stage["p50_ms"] <= stage["p95_ms"] <= stage["p99_ms"]
        assert snapshot["indexes"]["server.public"]["nn_queries"] >= 4

    def test_dashboard_default(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "pipeline stages" in out
        assert "anonymizer.cloak" in out

    def test_prometheus_format(self, capsys):
        assert main([*self.ARGS, "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_server_queries_total counter" in out

    def test_json_and_prometheus_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "--json", "--prometheus"])

    def test_format_flags_all_mutually_exclusive(self):
        for pair in (["--json", "--jsonl"], ["--jsonl", "--prometheus"]):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["obs", *pair])

    def test_unknown_flag_exits_with_code_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([*self.ARGS, "--no-such-flag"])
        assert excinfo.value.code == 2
        assert "unrecognized arguments" in capsys.readouterr().err

    def test_jsonl_passthrough_parses_as_events(self, capsys):
        from repro.obs.events import read_jsonl

        assert main([*self.ARGS, "--jsonl"]) == 0
        events = read_jsonl(capsys.readouterr().out.splitlines())
        assert events
        kinds = {e.kind for e in events}
        assert "cloak.result" in kinds
        assert "query.completed" in kinds

    def test_empty_telemetry_exits_nonzero(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro import PrivacySystem, PyramidCloaker, Telemetry
        from repro.geometry import Rect

        bounds = Rect(0, 0, 10, 10)

        def dark_quickstart(**_):
            return PrivacySystem(
                bounds, PyramidCloaker(bounds, height=3),
                telemetry=Telemetry(enabled=False),
            )

        monkeypatch.setattr(cli, "_observed_quickstart", dark_quickstart)
        assert main(["obs"]) == 1
        assert main(["obs", "--jsonl"]) == 1
        assert "no " in capsys.readouterr().err


class TestExplainCommand:
    def test_default_reproduces_figure_6a(self, capsys):
        assert main(["explain"]) == 0
        out = capsys.readouterr().out
        for probability in ("probability=1", "probability=0.75", "probability=0.5",
                            "probability=0.2", "probability=0.25"):
            assert probability in out
        assert "expected=2.7" in out

    def test_json_plan_parses(self, capsys):
        import json

        assert main(["explain", "-q", "batch", "--json", "--users", "40"]) == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["op"] == "batch"
        assert any(c["op"] == "snapshot" for c in plan["children"])

    def test_every_query_choice_renders(self, capsys):
        for query in ("public_range", "private_nn"):
            assert main(["explain", "-q", query, "--users", "40"]) == 0
            assert "index." in capsys.readouterr().out


class TestAuditCommand:
    ARGS = ["audit", "--users", "40", "--queries", "4"]

    def test_json_report_structure(self, capsys):
        import json

        assert main([*self.ARGS, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro.obs.audit/1"
        assert report["totals"]["cloaks"] > 0
        assert report["totals"]["undeclared_violations"] == 0

    def test_text_summary(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "privacy attainment audit" in out
        assert "profile k=8" in out

    def test_from_jsonl_round_trip(self, tmp_path, capsys):
        assert main(["obs", "--users", "40", "--queries", "4", "--jsonl"]) == 0
        trail = tmp_path / "trail.jsonl"
        trail.write_text(capsys.readouterr().out)
        assert main(["audit", "--from-jsonl", str(trail), "--json"]) == 0

    def test_empty_trail_exits_nonzero(self, tmp_path, capsys):
        trail = tmp_path / "empty.jsonl"
        trail.write_text("")
        assert main(["audit", "--from-jsonl", str(trail)]) == 1
        assert "no cloak events" in capsys.readouterr().err


class TestHealthCommand:
    ARGS = ["health", "--users", "40", "--queries", "4"]

    def test_healthy_workload_exits_0(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "== SLO health ==" in out
        assert "HEALTHY" in out
        assert "attainment" in out

    def test_json_report_structure(self, capsys):
        import json

        assert main([*self.ARGS, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro.obs.slo/1"
        assert report["healthy"] is True
        assert report["total"] == report["ok"] == 10
        names = {result["spec"]["name"] for result in report["results"]}
        assert "plan_accuracy" in names and "answer_accuracy" in names

    def test_custom_specs_can_fail_with_exit_4(self, tmp_path, capsys):
        import json

        specs = tmp_path / "slos.json"
        specs.write_text(
            json.dumps(
                [{"name": "impossible", "kind": "attainment_rate", "target": 1.1}]
            )
        )
        assert main([*self.ARGS, "--specs", str(specs)]) == 4
        out = capsys.readouterr().out
        assert "UNHEALTHY" in out
        assert "FAIL impossible" in out

    def test_watch_mode_bounded_iterations(self, capsys):
        assert main([*self.ARGS, "--watch", "--iterations", "2",
                     "--interval", "0"]) == 0
        out = capsys.readouterr().out
        assert out.count("== SLO health ==") == 2
        assert "watch tick 2" in out
        assert "pipeline stages" in out

    def test_invalid_sizes_exit(self):
        with pytest.raises(SystemExit, match="--users"):
            main(["health", "--users", "0"])


class TestProfileCommand:
    ARGS = ["profile", "--users", "40", "--queries", "4"]

    def test_ascii_table_default(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "== hot spans (self time) ==" in out
        assert "anonymizer" in out

    def test_json_report_structure(self, capsys):
        import json

        assert main([*self.ARGS, "--json", "--top", "5"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro.obs.profile/1"
        assert report["spans_seen"] > 0
        assert len(report["top"]) == 5
        assert report["flame"]["name"] == "all"
        assert report["flame"]["children"]

    def test_sampling_flag_respected(self, capsys):
        import json

        assert main([*self.ARGS, "--json", "--sample-every", "4"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["sample_every"] == 4

    def test_invalid_flags_exit(self):
        with pytest.raises(SystemExit, match="--top"):
            main(["profile", "--top", "0"])
        with pytest.raises(SystemExit, match="--sample-every"):
            main(["profile", "--sample-every", "0"])


class TestBenchHistoryCommand:
    def test_selftest_passes(self, capsys):
        assert main(["bench-history", "--selftest"]) == 0
        assert "selftest ok" in capsys.readouterr().out

    def test_injected_drop_exits_3(self, tmp_path, capsys):
        import json

        def write(qps):
            (tmp_path / "BENCH_x.json").write_text(
                json.dumps({"modes": {"nn": {"queries_per_second": qps}}})
            )

        for qps in (1000.0, 1010.0, 990.0):
            write(qps)
            assert main(["bench-history", "--root", str(tmp_path)]) == 0
            capsys.readouterr()
        write(650.0)
        assert main(["bench-history", "--root", str(tmp_path)]) == 3
        summary = json.loads(capsys.readouterr().out)
        assert summary["ok"] is False

    def test_empty_root_exits_1(self, tmp_path, capsys):
        assert main(["bench-history", "--root", str(tmp_path)]) == 1
        assert "no BENCH_" in capsys.readouterr().err


class TestCheckpointRecoverCommands:
    def _run_checkpoint(self, tmp_path, capsys, users=20, queries=4):
        import json

        directory = str(tmp_path / "state")
        code = main(
            [
                "checkpoint",
                "--dir",
                directory,
                "--users",
                str(users),
                "--queries",
                str(queries),
            ]
        )
        assert code == 0
        return directory, json.loads(capsys.readouterr().out)

    def test_checkpoint_leaves_recoverable_directory(self, tmp_path, capsys):
        import json
        import os

        directory, summary = self._run_checkpoint(tmp_path, capsys)
        assert summary["users"] == 20
        assert summary["checkpoint"] in summary["checkpoints"]
        assert os.path.exists(os.path.join(directory, "wal.jsonl"))
        assert os.path.exists(os.path.join(directory, "wal-meta.json"))
        assert os.path.exists(os.path.join(directory, summary["checkpoint"]))

        assert main(["recover", "--dir", directory, "--json", "--verify"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["users"] == 20
        assert report["queries_served"] == summary["queries_served"]
        assert report["checkpoint"] == summary["checkpoint"]
        assert report["final_seq"] == summary["wal_seq"]
        assert "totals" not in report["audit"]  # already the totals dict
        assert report["audit"]["cloaks"] > 0
        assert report["audit"]["undeclared_violations"] == 0

    def test_recover_text_output(self, tmp_path, capsys):
        directory, _ = self._run_checkpoint(tmp_path, capsys)
        assert main(["recover", "--dir", directory]) == 0
        out = capsys.readouterr().out
        assert f"recovered from {directory}" in out
        assert "events replayed" in out

    def test_recover_empty_directory_exits_5(self, tmp_path, capsys):
        assert main(["recover", "--dir", str(tmp_path)]) == 5
        assert "repro recover: error:" in capsys.readouterr().err

    def test_checkpoint_rejects_tiny_population(self, tmp_path):
        with pytest.raises(SystemExit, match="at least 2"):
            main(["checkpoint", "--dir", str(tmp_path / "s"), "--users", "1"])
