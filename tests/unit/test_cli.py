"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, _as_tables, _run_ids, build_parser, main
from repro.evalx.tables import Table


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_defaults_to_all(self):
        args = build_parser().parse_args(["experiments"])
        assert args.ids == ["all"]

    def test_report_output_flag(self):
        args = build_parser().parse_args(["report", "-o", "out.md"])
        assert args.output == "out.md"


class TestHelpers:
    def test_as_tables_single(self):
        table = Table("t", ["a"])
        assert _as_tables(table) == [table]

    def test_as_tables_tuple(self):
        tables = (Table("t1", ["a"]), Table("t2", ["b"]))
        assert _as_tables(tables) == list(tables)

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            _run_ids(["E99"])

    def test_unknown_experiment_message_lists_choices(self):
        with pytest.raises(SystemExit, match="E1.*E14.*'all'"):
            main(["experiments", "E99"])

    def test_registry_covers_e1_to_e14(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 15)}


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "correct: True" in out

    def test_experiments_e1(self, capsys):
        assert main(["experiments", "E1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "1000" in out

    def test_experiment_id_case_insensitive(self, capsys):
        assert main(["experiments", "e1"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys, monkeypatch):
        # Restrict the registry so the test stays fast.
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "EXPERIMENTS", {"E1": cli.EXPERIMENTS["E1"]}
        )
        target = tmp_path / "tables.md"
        assert main(["report", "-o", str(target)]) == 0
        content = target.read_text()
        assert "| time | k |" in content or "| time" in content
        assert "Figure 2" in content


class TestObsCommand:
    ARGS = ["obs", "--users", "40", "--queries", "4"]

    def test_json_round_trips(self, capsys):
        import json

        assert main([*self.ARGS, "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["server"]["queries_private_range"] == 4
        assert "query.private_range" in snapshot["stages"]
        stage = snapshot["stages"]["query.private_range"]
        assert stage["p50_ms"] <= stage["p95_ms"] <= stage["p99_ms"]
        assert snapshot["indexes"]["server.public"]["nn_queries"] >= 4

    def test_dashboard_default(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "pipeline stages" in out
        assert "anonymizer.cloak" in out

    def test_prometheus_format(self, capsys):
        assert main([*self.ARGS, "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_server_queries_total counter" in out

    def test_json_and_prometheus_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "--json", "--prometheus"])
