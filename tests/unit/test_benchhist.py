"""Benchmark history: envelope, metric extraction, regression flags."""

import json

import pytest

from repro.obs.benchhist import (
    DEFAULT_GATE,
    ENVELOPE_VERSION,
    HISTORY_SCHEMA,
    append_history,
    detect_regressions,
    extract_metrics,
    ingest_reports,
    load_history,
    make_envelope,
    metric_direction,
    run_bench_history,
    wrap_report,
)


class TestEnvelope:
    def test_make_envelope_keys(self):
        envelope = make_envelope("repro.test/1")
        assert envelope["schema"] == "repro.test/1"
        assert envelope["schema_version"] == ENVELOPE_VERSION
        assert envelope["git_sha"]
        assert "T" in envelope["created_at"]  # ISO timestamp
        assert envelope["python"].count(".") == 2

    def test_wrap_report_report_keys_win(self):
        wrapped = wrap_report({"git_sha": "pinned", "n": 3}, "repro.test/1")
        assert wrapped["git_sha"] == "pinned"
        assert wrapped["n"] == 3
        assert wrapped["schema"] == "repro.test/1"

    def test_git_sha_unknown_outside_checkout(self, tmp_path):
        assert make_envelope("s", cwd=tmp_path)["git_sha"] == "unknown"


class TestMetricExtraction:
    def test_direction_classification(self):
        assert metric_direction("modes.batched.nn.queries_per_second") == "higher"
        assert metric_direction("speedup_at_gate_scale.public_range") == "higher"
        assert metric_direction("span_overhead.mean_s") == "lower"
        assert metric_direction("timings.seconds") == "lower"
        assert metric_direction("latency.p95") == "lower"
        assert metric_direction("params.objects") is None
        assert metric_direction("sharing_ratio") is None

    def test_extract_dotted_names(self):
        report = {
            "modes": {"batched": {"nn": {"10000": {"queries_per_second": 8000.0}}}},
            "overhead": {"mean_s": 0.002},
            "params": {"objects": 10000},
            "label": "x",
        }
        metrics = extract_metrics(report)
        assert metrics == {
            "modes.batched.nn.10000.queries_per_second": 8000.0,
            "overhead.mean_s": 0.002,
        }

    def test_extract_skips_bools_and_nonfinite(self):
        report = {"ok": {"queries_per_second": True}, "t": {"mean_s": float("inf")}}
        assert extract_metrics(report) == {}


def series(values, metric="modes.batched.public_range.10000.queries_per_second"):
    return [
        {"source": "BENCH_x.json", "metrics": {metric: value}} for value in values
    ]


class TestRegressionDetection:
    def test_thirty_percent_throughput_drop_flags(self):
        flags = detect_regressions(series([1000.0, 1020.0, 980.0, 700.0]))
        assert len(flags) == 1
        flag = flags[0]
        assert flag["direction"] == "higher"
        assert flag["change"] == pytest.approx(-0.3)
        assert flag["gate"] == DEFAULT_GATE

    def test_small_moves_do_not_flag(self):
        assert detect_regressions(series([1000.0, 1020.0, 980.0, 950.0])) == []

    def test_latency_direction_flags_increases(self):
        assert detect_regressions(series([0.01, 0.011, 0.02], metric="t.mean_s"))
        assert detect_regressions(series([0.02, 0.019, 0.01], metric="t.mean_s")) == []

    def test_improvements_never_flag(self):
        assert detect_regressions(series([1000.0, 1010.0, 2000.0])) == []

    def test_fewer_than_two_points_never_flag(self):
        assert detect_regressions(series([1000.0])) == []
        assert detect_regressions([]) == []

    def test_baseline_is_median_of_recent_window(self):
        # One ancient slow run must not drag the baseline down.
        values = [100.0] + [1000.0, 1010.0, 990.0, 1005.0, 995.0] + [700.0]
        flags = detect_regressions(series(values))
        assert len(flags) == 1
        assert flags[0]["baseline"] == pytest.approx(1000.0)

    def test_series_separated_by_source(self):
        history = [
            {"source": "BENCH_a.json", "metrics": {"x.queries_per_second": 1000.0}},
            {"source": "BENCH_b.json", "metrics": {"x.queries_per_second": 500.0}},
        ]
        assert detect_regressions(history) == []


class TestHistoryFile:
    def test_ingest_append_load_round_trip(self, tmp_path):
        report = wrap_report(
            {"modes": {"nn": {"queries_per_second": 5000.0}}}, "repro.test/1"
        )
        bench = tmp_path / "BENCH_test.json"
        bench.write_text(json.dumps(report))
        records = ingest_reports([bench])
        assert len(records) == 1
        record = records[0]
        assert record["schema"] == HISTORY_SCHEMA
        assert record["source"] == "BENCH_test.json"
        assert record["report_schema"] == "repro.test/1"
        assert record["metrics"] == {"modes.nn.queries_per_second": 5000.0}
        history_path = tmp_path / "BENCH_HISTORY.jsonl"
        append_history(records, history_path)
        append_history(records, history_path)
        assert load_history(history_path) == records * 2

    def test_ingest_skips_unreadable_reports(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        listy = tmp_path / "BENCH_list.json"
        listy.write_text("[1, 2]")
        assert ingest_reports([bad, listy, tmp_path / "BENCH_missing.json"]) == []

    def test_load_missing_history_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []


class TestEndToEnd:
    def write_bench(self, root, qps):
        report = wrap_report(
            {"modes": {"nn": {"queries_per_second": qps}}}, "repro.test/1"
        )
        (root / "BENCH_test.json").write_text(json.dumps(report))

    def test_stable_trajectory_stays_ok(self, tmp_path):
        for qps in (1000.0, 1020.0, 990.0):
            self.write_bench(tmp_path, qps)
            summary = run_bench_history(tmp_path)
        assert summary["ok"] is True
        assert summary["ingested"] == ["BENCH_test.json"]
        assert summary["history_records"] == 3

    def test_injected_drop_fails_the_check(self, tmp_path):
        for qps in (1000.0, 1020.0, 990.0):
            self.write_bench(tmp_path, qps)
            run_bench_history(tmp_path)
        self.write_bench(tmp_path, 650.0)
        summary = run_bench_history(tmp_path)
        assert summary["ok"] is False
        assert summary["regressions"][0]["metric"] == "modes.nn.queries_per_second"

    def test_dry_run_does_not_persist(self, tmp_path):
        self.write_bench(tmp_path, 1000.0)
        summary = run_bench_history(tmp_path, append=False)
        assert summary["history_records"] == 1
        assert load_history(tmp_path / "BENCH_HISTORY.jsonl") == []

    def test_history_file_not_reingested(self, tmp_path):
        self.write_bench(tmp_path, 1000.0)
        run_bench_history(tmp_path)
        summary = run_bench_history(tmp_path)
        assert summary["ingested"] == ["BENCH_test.json"]
