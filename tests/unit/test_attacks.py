"""Unit tests for the adversary suite."""

import numpy as np
import pytest

from repro.attacks.base import AttackOutcome
from repro.attacks.linkage import MaxSpeedLinkageAttack
from repro.attacks.location import (
    BoundaryAttack,
    CenterAttack,
    RandomGuessAttack,
    distance_to_boundary,
    on_boundary_fraction,
)
from repro.attacks.metrics import evaluate_attacks
from repro.attacks.posterior import (
    posterior_anonymity,
    reciprocity_rate,
    regions_equal,
)
from repro.cloaking.hilbert import HilbertCloaker
from repro.cloaking.mbr import MBRCloaker
from repro.cloaking.naive import NaiveCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)


def load(cls, points, **kwargs):
    cloaker = cls(BOUNDS, **kwargs)
    for i, p in enumerate(points):
        cloaker.add_user(i, p)
    return cloaker


class TestAttackOutcome:
    def test_normalized_error(self):
        outcome = AttackOutcome(guess=Point(0, 0), error=5.0, region_diagonal=10.0)
        assert outcome.normalized_error == 0.5

    def test_normalized_error_degenerate_region(self):
        hit = AttackOutcome(guess=Point(0, 0), error=0.0, region_diagonal=0.0)
        miss = AttackOutcome(guess=Point(0, 0), error=1.0, region_diagonal=0.0)
        assert hit.normalized_error == 0.0
        assert miss.normalized_error == float("inf")

    def test_hit_within(self):
        outcome = AttackOutcome(guess=Point(0, 0), error=2.0, region_diagonal=10.0)
        assert outcome.hit_within(2.0)
        assert not outcome.hit_within(1.9)


class TestCenterAttack:
    def test_breaks_naive_cloaking(self, uniform_points_500):
        cloaker = load(NaiveCloaker, uniform_points_500)
        attack = CenterAttack()
        interior = [
            i
            for i, p in enumerate(uniform_points_500)
            if 25 < p.x < 75 and 25 < p.y < 75
        ][:30]
        errors = []
        for victim in interior:
            region = cloaker.cloak(victim, PrivacyRequirement(k=10)).region
            outcome = attack.attack(region, uniform_points_500[victim])
            errors.append(outcome.normalized_error)
        assert np.mean(errors) < 0.01  # essentially exact localisation

    def test_does_not_break_pyramid(self, uniform_points_500):
        cloaker = load(PyramidCloaker, uniform_points_500, height=6)
        attack = CenterAttack()
        errors = []
        for victim in range(40):
            region = cloaker.cloak(victim, PrivacyRequirement(k=10)).region
            errors.append(
                attack.attack(region, uniform_points_500[victim]).normalized_error
            )
        assert np.mean(errors) > 0.15  # comparable to blind guessing


class TestBoundaryLeakage:
    def test_distance_to_boundary(self):
        region = Rect(0, 0, 10, 10)
        assert distance_to_boundary(region, Point(5, 5)) == 5.0
        assert distance_to_boundary(region, Point(1, 5)) == 1.0
        assert distance_to_boundary(region, Point(0, 5)) == 0.0

    def test_distance_outside_raises(self):
        with pytest.raises(ValueError):
            distance_to_boundary(Rect(0, 0, 1, 1), Point(5, 5))

    def test_mbr_victims_often_on_boundary(self, uniform_points_500):
        cloaker = load(MBRCloaker, uniform_points_500)
        cloaks = []
        for victim in range(60):
            region = cloaker.cloak(victim, PrivacyRequirement(k=5)).region
            cloaks.append((region, uniform_points_500[victim]))
        rate = on_boundary_fraction(cloaks)
        # The requester is the *centre* of her kNN group, so she defines an
        # edge less often than a random member — but still vastly more
        # often than the ~0 of a space-partitioned region.
        assert rate > 0.15

    def test_pyramid_victims_rarely_on_boundary(self, uniform_points_500):
        cloaker = load(PyramidCloaker, uniform_points_500, height=6)
        cloaks = []
        for victim in range(60):
            region = cloaker.cloak(victim, PrivacyRequirement(k=5)).region
            cloaks.append((region, uniform_points_500[victim]))
        assert on_boundary_fraction(cloaks) < 0.05

    def test_boundary_attack_guesses_on_boundary(self, rng):
        attack = BoundaryAttack(rng)
        region = Rect(10, 10, 20, 30)
        for _ in range(20):
            assert region.on_boundary(attack.guess(region), tolerance=1e-9)

    def test_empty_cloaks_raise(self):
        with pytest.raises(ValueError):
            on_boundary_fraction([])


class TestRandomGuess:
    def test_guess_inside_region(self, rng):
        attack = RandomGuessAttack(rng)
        region = Rect(5, 5, 8, 9)
        for _ in range(50):
            assert region.contains_point(attack.guess(region))


class TestPosteriorAnonymity:
    def test_regions_equal_tolerance(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(0, 0, 1 + 1e-12, 1)
        assert regions_equal(a, b)
        assert not regions_equal(a, Rect(0, 0, 2, 1))

    def test_naive_cloaking_has_singleton_posterior(self, uniform_points_500):
        cloaker = load(NaiveCloaker, uniform_points_500)
        interior = next(
            i
            for i, p in enumerate(uniform_points_500)
            if 25 < p.x < 75 and 25 < p.y < 75
        )
        result = posterior_anonymity(cloaker, interior, PrivacyRequirement(k=10))
        assert result.posterior_anonymity == 1
        assert not result.is_reciprocal
        assert result.entropy_bits == 0.0

    def test_hilbert_cloaking_is_reciprocal(self, uniform_points_500):
        cloaker = load(HilbertCloaker, uniform_points_500)
        req = PrivacyRequirement(k=10)
        for victim in (0, 100, 499):
            result = posterior_anonymity(cloaker, victim, req)
            assert result.posterior_anonymity >= 10
            assert result.is_reciprocal
            assert result.anonymity_ratio >= 1.0

    def test_victim_always_in_posterior(self, uniform_points_500):
        cloaker = load(PyramidCloaker, uniform_points_500, height=6)
        result = posterior_anonymity(cloaker, 7, PrivacyRequirement(k=10))
        assert 7 in result.plausible_issuers

    def test_reciprocity_rate_bounds(self, uniform_points_500):
        cloaker = load(HilbertCloaker, uniform_points_500)
        rate = reciprocity_rate(cloaker, PrivacyRequirement(k=10), [0, 5, 10])
        assert rate == 1.0

    def test_reciprocity_rate_empty_raises(self, uniform_points_500):
        cloaker = load(HilbertCloaker, uniform_points_500)
        with pytest.raises(ValueError):
            reciprocity_rate(cloaker, PrivacyRequirement(k=10), [])


class TestLinkageAttack:
    def test_first_observation_sets_feasible(self):
        attack = MaxSpeedLinkageAttack(max_speed=1.0)
        region = Rect(0, 0, 10, 10)
        step = attack.observe(0.0, region)
        assert step.feasible == region
        assert step.shrinkage == 1.0

    def test_static_region_no_shrinkage(self):
        attack = MaxSpeedLinkageAttack(max_speed=5.0)
        region = Rect(0, 0, 10, 10)
        attack.observe(0.0, region)
        step = attack.observe(1.0, region)
        assert step.shrinkage == pytest.approx(1.0)

    def test_slow_victim_jumping_regions_leaks(self):
        attack = MaxSpeedLinkageAttack(max_speed=1.0)
        attack.observe(0.0, Rect(0, 0, 10, 10))
        # One second later the region moved right by 9: the victim must be
        # in the overlap strip + reach margin.
        step = attack.observe(1.0, Rect(9, 0, 19, 10))
        assert step.feasible is not None
        assert step.feasible.width <= 2.0 + 1e-9
        assert step.shrinkage < 0.25

    def test_inconsistent_speed_falls_back(self):
        attack = MaxSpeedLinkageAttack(max_speed=0.1)
        attack.observe(0.0, Rect(0, 0, 1, 1))
        step = attack.observe(1.0, Rect(50, 50, 60, 60))
        assert step.feasible is None
        assert step.shrinkage == 1.0
        # Tracker reset soundly to the new region.
        assert attack.feasible_region == Rect(50, 50, 60, 60)

    def test_out_of_order_raises(self):
        attack = MaxSpeedLinkageAttack(max_speed=1.0)
        attack.observe(5.0, Rect(0, 0, 1, 1))
        with pytest.raises(ValueError):
            attack.observe(4.0, Rect(0, 0, 1, 1))

    def test_mean_shrinkage_requires_observations(self):
        with pytest.raises(ValueError):
            MaxSpeedLinkageAttack(max_speed=1.0).mean_shrinkage()

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            MaxSpeedLinkageAttack(max_speed=-1.0)


class TestEvaluateAttacks:
    def test_report_fields(self, uniform_points_500, rng):
        cloaker = load(PyramidCloaker, uniform_points_500, height=5)
        report = evaluate_attacks(
            cloaker,
            PrivacyRequirement(k=8),
            victims=list(range(20)),
            rng=rng,
            posterior_sample=5,
        )
        assert report.algorithm == "pyramid"
        assert report.k == 8
        assert 0 <= report.boundary_rate <= 1
        assert report.mean_posterior_anonymity >= 1
        assert 0 <= report.reciprocity_rate <= 1

    def test_no_victims_raises(self, uniform_points_500, rng):
        cloaker = load(PyramidCloaker, uniform_points_500, height=5)
        with pytest.raises(ValueError):
            evaluate_attacks(cloaker, PrivacyRequirement(k=8), [], rng)
