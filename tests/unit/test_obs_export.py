"""Exporters (repro.obs.export) and the PrivacySystem.telemetry() snapshot."""

import json

import numpy as np
import pytest

from repro import MobileUser, PrivacyProfile, PrivacySystem, PyramidCloaker, Telemetry
from repro.geometry import Point, Rect
from repro.obs.export import render_dashboard, to_json, to_prometheus


@pytest.fixture(scope="module")
def system():
    rng = np.random.default_rng(11)
    bounds = Rect(0, 0, 100, 100)
    sys_ = PrivacySystem(bounds, PyramidCloaker(bounds, height=5))
    for j in range(10):
        x, y = rng.uniform(0, 100, 2)
        sys_.add_poi(f"poi-{j}", Point(float(x), float(y)))
    for i in range(60):
        x, y = rng.uniform(0, 100, 2)
        sys_.add_user(
            MobileUser(i, Point(float(x), float(y)), PrivacyProfile.always(k=5))
        )
    sys_.publish_all()
    for i in range(5):
        sys_.user_range_query(i, radius=15.0)
        sys_.user_nn_query(i)
    sys_.server.public_count(Rect(10, 10, 90, 90))
    return sys_


class TestSystemTelemetry:
    def test_sections_present(self, system):
        snap = system.telemetry()
        assert set(snap) >= {
            "enabled", "stages", "counters", "gauges",
            "histograms", "indexes", "server", "qos",
        }

    def test_pipeline_stages_have_quantiles(self, system):
        stages = system.telemetry()["stages"]
        for stage in (
            "anonymizer.cloak",
            "server.private_range",
            "server.private_nn",
            "client.refine",
            "query.private_range",
            "query.private_nn",
        ):
            assert stage in stages, f"missing stage {stage}"
            summary = stages[stage]
            assert summary["count"] >= 5
            assert 0 <= summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]

    def test_index_visit_counters(self, system):
        indexes = system.telemetry()["indexes"]
        assert indexes["server.public"]["nn_queries"] >= 5
        assert indexes["server.public"]["node_visits"] > 0
        assert indexes["server.private"]["range_queries"] >= 1
        # The pyramid cloaker exposes its backing index too.
        assert indexes["anonymizer.cloaker"]["node_visits"] > 0

    def test_server_and_qos_sections(self, system):
        snap = system.telemetry()
        assert snap["server"]["queries_private_range"] >= 5
        assert all(isinstance(v, int) for v in snap["server"].values())
        assert snap["qos"]["range_accuracy"] == 1.0

    def test_snapshot_is_json_serialisable(self, system):
        round_tripped = json.loads(to_json(system.telemetry()))
        assert round_tripped["server"]["public_objects"] == 10

    def test_per_system_isolation(self):
        bounds = Rect(0, 0, 10, 10)
        a = PrivacySystem(bounds, PyramidCloaker(bounds, height=3))
        b = PrivacySystem(bounds, PyramidCloaker(bounds, height=3))
        a.add_user(MobileUser("u", Point(5, 5), PrivacyProfile.always(k=1)))
        a.publish_all()
        assert a.telemetry()["stages"]
        assert not b.telemetry()["stages"]

    def test_injected_telemetry_is_used(self):
        bounds = Rect(0, 0, 10, 10)
        obs = Telemetry(enabled=False)
        system = PrivacySystem(bounds, PyramidCloaker(bounds, height=3), telemetry=obs)
        system.add_user(MobileUser("u", Point(5, 5), PrivacyProfile.always(k=1)))
        system.publish_all()
        assert system.obs is obs
        assert system.telemetry()["stages"] == {}  # tracing was off


class TestPrometheus:
    def test_exposition_format(self, system):
        text = to_prometheus(system.telemetry())
        assert "# TYPE repro_server_queries_total counter" in text
        assert 'repro_server_queries_total{kind="private_nn"} ' in text
        assert 'repro_stage_latency_ms{quantile="0.95",span="query.private_nn"}' in text
        assert 'repro_index_node_visits_total{index="server.public"}' in text

    def test_type_lines_unique(self, system):
        lines = to_prometheus(system.telemetry()).splitlines()
        type_lines = [l for l in lines if l.startswith("# TYPE ")]
        assert len(type_lines) == len(set(type_lines))

    def test_sample_lines_parse(self, system):
        for line in to_prometheus(system.telemetry()).splitlines():
            if line.startswith("#") or not line:
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # every sample ends in a number
            assert name_part.startswith("repro_")


class TestPrometheusEdgeCases:
    def test_label_values_escaped(self):
        obs = Telemetry()
        obs.registry.counter('odd', label='a"b\\c\nd').inc()
        text = to_prometheus(obs.snapshot())
        assert 'label="a\\"b\\\\c\\nd"' in text

    def test_dotted_event_counter_names(self):
        obs = Telemetry()
        obs.emit("cloak.result", user="u")
        obs.emit("cloak.result", user="v")
        obs.emit("query.completed", query="private_nn")
        text = to_prometheus(obs.snapshot())
        assert 'repro_events_emitted_total{kind="cloak.result"} 2' in text
        assert 'repro_events_emitted_total{kind="query.completed"} 1' in text
        # One TYPE line for the whole labelled family.
        assert text.count("# TYPE repro_events_emitted_total counter") == 1

    def test_histogram_buckets_cumulative_and_monotone(self):
        obs = Telemetry()
        hist = obs.registry.histogram("explain.visits")
        for value in (0.5, 3.0, 7.0, 40.0, 900.0):
            hist.observe(value)
        text = to_prometheus(obs.snapshot())
        assert "# TYPE repro_explain_visits histogram" in text
        bucket_lines = [
            l for l in text.splitlines() if l.startswith("repro_explain_visits_bucket")
        ]
        counts = [float(l.rsplit(" ", 1)[1]) for l in bucket_lines]
        assert counts == sorted(counts), "cumulative buckets must be monotone"
        assert bucket_lines[-1].startswith('repro_explain_visits_bucket{le="+Inf"}')
        assert counts[-1] == 5.0
        assert "repro_explain_visits_count 5" in text

    def test_histogram_without_buckets_falls_back_to_summary(self):
        snapshot = {
            "histograms": {
                "legacy": {"count": 2, "sum": 3.0, "p50": 1.0, "p95": 2.0, "p99": 2.0}
            }
        }
        text = to_prometheus(snapshot)
        assert "# TYPE repro_legacy summary" in text
        assert 'repro_legacy{quantile="0.95"} 2.0' in text


class TestDashboard:
    def test_sections_render(self, system):
        text = render_dashboard(system.telemetry())
        assert "pipeline stages" in text
        assert "index work" in text
        assert "quality of service" in text
        assert "query.private_nn" in text

    def test_empty_snapshot(self):
        assert "no telemetry" in render_dashboard({})


@pytest.fixture()
def feedback_snapshot():
    """One correlated query + one SLO verdict, as both exporters see it."""
    from repro.obs import SLOMonitor, SLOSpec

    obs = Telemetry()
    with obs.correlate("b"):
        with obs.correlate("q"):
            obs.emit(
                "query.completed", query="private_range", overhead=2.0,
                correct=True,
            )
    SLOMonitor([SLOSpec("answer_accuracy", "query_accuracy", 0.5)]).evaluate(
        snapshot=obs.snapshot(),
        events=list(obs.events.events()),
        telemetry=obs,
    )
    return obs.snapshot()


class TestFeedbackLoopGoldens:
    """Golden output: correlation-ID counters and SLO gauges in exporters."""

    def test_prometheus_correlation_counters(self, feedback_snapshot):
        text = to_prometheus(feedback_snapshot)
        assert "# TYPE repro_correlation_ids_total counter" in text
        assert 'repro_correlation_ids_total{kind="q"} 1' in text
        assert 'repro_correlation_ids_total{kind="b"} 1' in text

    def test_prometheus_slo_gauges(self, feedback_snapshot):
        text = to_prometheus(feedback_snapshot)
        assert "# TYPE repro_slo_ok gauge" in text
        assert 'repro_slo_ok{slo="answer_accuracy"} 1.0' in text
        assert 'repro_slo_value{slo="answer_accuracy"} 1.0' in text
        assert 'repro_events_emitted_total{kind="slo.evaluated"} 1' in text

    def test_dashboard_correlation_and_slo_lines(self, feedback_snapshot):
        text = render_dashboard(feedback_snapshot)
        assert "correlation.ids{kind=q} = 1" in text
        assert "correlation.ids{kind=b} = 1" in text
        assert "slo.ok{slo=answer_accuracy} = 1.0" in text
        assert "slo.value{slo=answer_accuracy} = 1.0" in text
