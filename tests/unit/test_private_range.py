"""Unit tests for private range queries over public data (Figure 5a)."""

import pytest

from repro.core.errors import QueryError
from repro.core.stores import PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.sampling import uniform_points
from repro.queries.private_range import (
    exact_range_answer,
    private_range_query,
    refine_range_candidates,
)


@pytest.fixture
def store(uniform_points_500):
    s = PublicStore()
    for i, p in enumerate(uniform_points_500):
        s.add(i, p)
    return s


REGION = Rect(40, 40, 55, 50)


class TestCandidateGeneration:
    def test_exact_subset_of_mbr(self, store):
        exact = private_range_query(store, REGION, 8.0, "exact")
        approx = private_range_query(store, REGION, 8.0, "mbr")
        assert set(exact.candidates) <= set(approx.candidates)

    def test_no_false_negatives_exact(self, store, rng):
        result = private_range_query(store, REGION, 8.0, "exact")
        for p in uniform_points(REGION, 300, rng):
            truth = exact_range_answer(store, p, 8.0)
            assert set(truth) <= set(result.candidates)

    def test_no_false_negatives_mbr(self, store, rng):
        result = private_range_query(store, REGION, 8.0, "mbr")
        for p in uniform_points(REGION, 100, rng):
            truth = exact_range_answer(store, p, 8.0)
            assert set(truth) <= set(result.candidates)

    def test_candidates_within_expanded_region(self, store):
        result = private_range_query(store, REGION, 8.0, "exact")
        window = REGION.expanded(8.0)
        for c in result.candidates:
            assert window.contains_point(store.point_of(c))

    def test_zero_radius_returns_objects_in_region(self, store, uniform_points_500):
        result = private_range_query(store, REGION, 0.0, "exact")
        expected = {
            i for i, p in enumerate(uniform_points_500) if REGION.contains_point(p)
        }
        assert set(result.candidates) == expected

    def test_degenerate_region_is_classic_query(self, store, uniform_points_500):
        p = uniform_points_500[0]
        result = private_range_query(store, Rect.from_point(p), 5.0, "exact")
        assert sorted(result.candidates, key=repr) == sorted(
            exact_range_answer(store, p, 5.0), key=repr
        )

    def test_negative_radius_raises(self, store):
        with pytest.raises(QueryError):
            private_range_query(store, REGION, -1.0)

    def test_unknown_method_raises(self, store):
        with pytest.raises(QueryError):
            private_range_query(store, REGION, 1.0, "fancy")

    def test_transmission_size(self, store):
        result = private_range_query(store, REGION, 8.0)
        assert result.transmission_size == len(result.candidates)

    def test_larger_region_more_candidates(self, store):
        small = private_range_query(store, REGION, 5.0)
        large = private_range_query(store, REGION.expanded(10), 5.0)
        assert len(large.candidates) >= len(small.candidates)


class TestRefinement:
    def test_refinement_equals_ground_truth(self, store, rng):
        result = private_range_query(store, REGION, 8.0, "exact")
        for p in uniform_points(REGION, 50, rng):
            refined = refine_range_candidates(store, result, p)
            assert sorted(refined, key=repr) == sorted(
                exact_range_answer(store, p, 8.0), key=repr
            )

    def test_refinement_from_mbr_candidates_also_exact(self, store, rng):
        result = private_range_query(store, REGION, 8.0, "mbr")
        p = uniform_points(REGION, 1, rng)[0]
        refined = refine_range_candidates(store, result, p)
        assert sorted(refined, key=repr) == sorted(
            exact_range_answer(store, p, 8.0), key=repr
        )


class TestExactAnswer:
    def test_radius_inclusive(self):
        store = PublicStore()
        store.add("a", Point(3, 0))
        assert exact_range_answer(store, Point(0, 0), 3.0) == ["a"]
        assert exact_range_answer(store, Point(0, 0), 2.99) == []

    def test_negative_radius_raises(self, store):
        with pytest.raises(QueryError):
            exact_range_answer(store, Point(0, 0), -0.1)
