"""Unit tests for public NN queries over private data (Figure 6b)."""

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.core.stores import PrivateStore
from repro.geometry.distances import max_dist, min_dist
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.queries.public_nn import (
    certain_nn_user,
    estimate_nn_probabilities,
    exact_nn_user,
    nn_candidate_users,
    public_nn_query,
)

Q = Point(50, 50)


def make_store(regions: dict) -> PrivateStore:
    store = PrivateStore()
    for object_id, region in regions.items():
        store.set_region(object_id, region)
    return store


class TestCandidatePruning:
    def test_dominated_region_pruned(self):
        store = make_store(
            {
                "near": Rect(48, 48, 52, 52),
                "far": Rect(90, 90, 95, 95),
            }
        )
        candidates, bound = nn_candidate_users(store, Q)
        assert candidates == ["near"]
        assert bound == pytest.approx(max_dist(Q, Rect(48, 48, 52, 52)))

    def test_overlapping_uncertainty_keeps_both(self):
        store = make_store(
            {
                "a": Rect(45, 45, 60, 60),
                "b": Rect(40, 40, 55, 55),
            }
        )
        candidates, _ = nn_candidate_users(store, Q)
        assert set(candidates) == {"a", "b"}

    def test_bound_is_sound(self, rng):
        regions = {}
        for i in range(30):
            cx, cy = rng.uniform(0, 100, 2)
            w, h = rng.uniform(1, 20, 2)
            regions[i] = Rect.from_center(Point(float(cx), float(cy)), float(w), float(h))
        store = make_store(regions)
        candidates, bound = nn_candidate_users(store, Q)
        # Every non-candidate has min_dist > bound: it loses to the bound
        # attainer no matter where anyone actually is.
        for i, region in regions.items():
            if i not in candidates:
                assert min_dist(Q, region) > bound

    def test_empty_store_raises(self):
        with pytest.raises(QueryError):
            nn_candidate_users(PrivateStore(), Q)


class TestTrueNNAlwaysCandidate:
    def test_monte_carlo_ground_truth_containment(self, rng):
        for trial in range(10):
            regions = {}
            exact = {}
            for i in range(25):
                cx, cy = rng.uniform(10, 90, 2)
                w, h = rng.uniform(0.5, 15, 2)
                region = Rect.from_center(Point(float(cx), float(cy)), float(w), float(h))
                regions[i] = region
                # The user's true location is somewhere in her region.
                exact[i] = Point(
                    float(rng.uniform(region.min_x, region.max_x)),
                    float(rng.uniform(region.min_y, region.max_y)),
                )
            store = make_store(regions)
            candidates, _ = nn_candidate_users(store, Q)
            assert exact_nn_user(exact, Q) in candidates


class TestProbabilities:
    def test_probabilities_sum_to_one(self, rng):
        store = make_store(
            {i: Rect.from_center(Point(45 + i, 50), 8, 8) for i in range(5)}
        )
        result = public_nn_query(store, Q, samples=2000, rng=rng)
        assert result.answer.total_probability == pytest.approx(1.0)

    def test_single_candidate_probability_one_no_sampling(self):
        store = make_store(
            {"close": Rect(49, 49, 51, 51), "far": Rect(0, 0, 2, 2)}
        )
        result = public_nn_query(store, Q)
        assert result.samples == 0
        assert result.answer.probabilities == {"close": 1.0}

    def test_nearer_region_more_probable(self, rng):
        store = make_store(
            {
                "near": Rect(48, 48, 56, 56),
                "far": Rect(54, 54, 66, 66),
            }
        )
        result = public_nn_query(store, Q, samples=6000, rng=rng)
        probs = result.answer.probabilities
        assert probs["near"] > probs["far"]

    def test_symmetric_regions_equal_probability(self, rng):
        store = make_store(
            {
                "left": Rect(38, 45, 48, 55),
                "right": Rect(52, 45, 62, 55),
            }
        )
        result = public_nn_query(store, Q, samples=20000, rng=rng)
        probs = result.answer.probabilities
        assert probs["left"] == pytest.approx(probs["right"], abs=0.03)

    def test_estimate_matches_analytic_point_regions(self, rng):
        # Degenerate regions: probabilities collapse to the deterministic NN.
        regions = [Rect.from_point(Point(52, 50)), Rect.from_point(Point(60, 50))]
        probs = estimate_nn_probabilities(regions, Q, 500, rng)
        assert probs == [1.0, 0.0]

    def test_invalid_samples_raise(self):
        store = make_store({"a": Rect(0, 0, 1, 1), "b": Rect(2, 2, 3, 3)})
        with pytest.raises(QueryError):
            public_nn_query(store, Q, samples=0)

    def test_deterministic_default_rng(self):
        store = make_store(
            {"a": Rect(40, 40, 55, 55), "b": Rect(45, 45, 60, 60)}
        )
        r1 = public_nn_query(store, Q, samples=1000)
        r2 = public_nn_query(store, Q, samples=1000)
        assert r1.answer.probabilities == r2.answer.probabilities


class TestCertainNN:
    def test_certain_when_worst_case_beats_all(self):
        store = make_store(
            {
                "sure": Rect(49, 49, 51, 51),
                "other": Rect(70, 70, 80, 80),
                "another": Rect(10, 10, 20, 20),
            }
        )
        assert certain_nn_user(store, Q) == "sure"

    def test_none_when_ambiguous(self):
        store = make_store(
            {
                "a": Rect(40, 40, 60, 60),
                "b": Rect(45, 45, 65, 65),
            }
        )
        assert certain_nn_user(store, Q) is None

    def test_single_user_is_certain(self):
        store = make_store({"only": Rect(0, 0, 100, 100)})
        assert certain_nn_user(store, Q) == "only"


class TestExactNNUser:
    def test_picks_closest(self):
        exact = {"a": Point(0, 0), "b": Point(49, 49)}
        assert exact_nn_user(exact, Q) == "b"

    def test_empty_raises(self):
        with pytest.raises(QueryError):
            exact_nn_user({}, Q)
