"""Unit tests for the windowed time-series store (repro.obs.timeseries)."""

import pytest

from repro.obs import Telemetry
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    TimeSeriesStore,
    window_quantile,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_store(interval=1.0, keep=10):
    telemetry = Telemetry()
    clock = FakeClock()
    store = TimeSeriesStore(
        telemetry, interval=interval, keep=keep, clock=clock
    )
    return telemetry, clock, store


class TestWindowCutting:
    def test_counter_deltas_not_cumulative_values(self):
        telemetry, clock, store = make_store()
        telemetry.count("requests", 5)
        clock.advance(1.0)
        first = store.sample()
        assert first.counters["requests"] == 5
        telemetry.count("requests", 3)
        clock.advance(1.0)
        second = store.sample()
        assert second.counters["requests"] == 3
        assert second.index == 1

    def test_zero_delta_counters_omitted(self):
        telemetry, clock, store = make_store()
        telemetry.count("touched", 1)
        clock.advance(1.0)
        store.sample()
        telemetry.count("other", 2)
        clock.advance(1.0)
        window = store.sample()
        assert "touched" not in window.counters
        assert window.counters["other"] == 2

    def test_rates_divide_by_measured_elapsed(self):
        telemetry, clock, store = make_store()
        telemetry.count("requests", 10)
        clock.advance(4.0)  # overdue window: rates stay honest
        window = store.sample()
        assert window.rates["requests"] == pytest.approx(2.5)
        assert window.elapsed == pytest.approx(4.0)

    def test_gauges_are_instantaneous_values(self):
        telemetry, clock, store = make_store()
        telemetry.set_gauge("population", 7.0)
        clock.advance(1.0)
        store.sample()
        telemetry.set_gauge("population", 3.0)
        clock.advance(1.0)
        window = store.sample()
        assert window.gauges["population"] == 3.0

    def test_histogram_window_stats(self):
        telemetry, clock, store = make_store()
        for value in (1.0, 1.0, 100.0):
            telemetry.observe("latency", value)
        clock.advance(1.0)
        window = store.sample()
        stats = window.histograms["latency"]
        assert stats["count"] == 3
        assert stats["sum"] == pytest.approx(102.0)
        assert stats["mean"] == pytest.approx(34.0)
        # p50 must land in the bucket holding 1.0, p99 in 100.0's bucket.
        assert stats["p50"] <= 1.0
        assert 64.0 < stats["p99"] <= 128.0

    def test_quiet_histograms_omitted(self):
        telemetry, clock, store = make_store()
        telemetry.observe("latency", 1.0)
        clock.advance(1.0)
        store.sample()
        clock.advance(1.0)
        window = store.sample()
        assert "latency" not in window.histograms

    def test_event_deltas_and_seq_range(self):
        telemetry, clock, store = make_store()
        telemetry.emit("user.added", user="u1", x=0.0, y=0.0)
        telemetry.emit("user.added", user="u2", x=1.0, y=1.0)
        telemetry.emit("clock.advanced", t=1.0, dt=1.0)
        clock.advance(1.0)
        window = store.sample()
        assert window.events == {"user.added": 2, "clock.advanced": 1}
        assert window.seq_start == 0
        assert window.seq_end == 3


class TestSamplingCadence:
    def test_maybe_sample_before_due_is_noop(self):
        _, clock, store = make_store(interval=1.0)
        clock.advance(0.5)
        assert store.maybe_sample() is None
        assert len(store) == 0

    def test_maybe_sample_cuts_once_due(self):
        _, clock, store = make_store(interval=1.0)
        clock.advance(1.0)
        window = store.maybe_sample()
        assert window is not None
        assert len(store) == 1
        # Freshly reset: the next call is again before due.
        assert store.maybe_sample() is None

    def test_ring_is_bounded(self):
        _, clock, store = make_store(keep=3)
        for _ in range(7):
            clock.advance(1.0)
            store.sample()
        assert len(store) == 3
        assert store.windows_cut == 7
        assert [w.index for w in store.windows()] == [4, 5, 6]

    def test_on_sample_hooks_fire(self):
        _, clock, store = make_store()
        seen = []
        store.on_sample.append(seen.append)
        clock.advance(1.0)
        window = store.sample()
        assert seen == [window]

    def test_rejects_bad_configuration(self):
        telemetry = Telemetry()
        with pytest.raises(ValueError):
            TimeSeriesStore(telemetry, interval=-1.0)
        with pytest.raises(ValueError):
            TimeSeriesStore(telemetry, keep=0)


class TestExport:
    def test_snapshot_schema_and_roundtrip(self):
        import json

        telemetry, clock, store = make_store()
        telemetry.count("requests", 2)
        telemetry.observe("latency", 3.0)
        clock.advance(1.0)
        store.sample()
        snapshot = store.snapshot()
        assert snapshot["schema"] == TIMESERIES_SCHEMA
        assert snapshot["windows_cut"] == 1
        assert len(snapshot["windows"]) == 1
        json.dumps(snapshot)  # JSON-safe as-is

    def test_render_smoke(self):
        telemetry, clock, store = make_store()
        assert "no windows" in store.render()
        telemetry.count("requests", 2)
        telemetry.observe("latency", 3.0)
        telemetry.emit("user.added", user="u", x=0.0, y=0.0)
        clock.advance(1.0)
        store.sample()
        text = store.render()
        assert "window #0" in text
        assert "latency" in text


class TestWindowQuantile:
    def test_empty_window_is_zero(self):
        assert window_quantile((1.0, 2.0), [0, 0, 0], 0.95) == 0.0

    def test_single_bucket_interpolates_from_lower_bound(self):
        bounds = (1.0, 2.0, 4.0)
        # all 4 samples in the (2.0, 4.0] bucket
        deltas = [0, 0, 4, 0]
        assert 2.0 < window_quantile(bounds, deltas, 0.5) <= 4.0

    def test_overflow_bucket_reports_last_bound(self):
        bounds = (1.0, 2.0)
        deltas = [0, 0, 3]
        assert window_quantile(bounds, deltas, 0.99) == 2.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            window_quantile((1.0,), [1, 0], 1.5)
