"""Unit tests for the mixed query-workload driver."""

import numpy as np
import pytest

from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.errors import QueryError
from repro.core.profiles import PrivacyProfile
from repro.core.system import PrivacySystem
from repro.evalx.query_workload import (
    QueryEvent,
    QueryKind,
    QueryMix,
    generate_events,
    run_workload,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.users import MobileUser

BOUNDS = Rect(0, 0, 100, 100)


@pytest.fixture
def system(uniform_points_500):
    system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=6))
    for i, p in enumerate(uniform_points_500[:300]):
        system.add_user(MobileUser(i, p, PrivacyProfile.always(k=8)))
    for j in range(60):
        system.add_poi(("poi", j), Point((17 * j) % 100, (41 * j) % 100))
    system.publish_all()
    return system


class TestMixValidation:
    def test_invalid_mixes(self):
        with pytest.raises(QueryError):
            QueryMix(n_queries=-1)
        with pytest.raises(QueryError):
            QueryMix(weights=(1, 2, 3))
        with pytest.raises(QueryError):
            QueryMix(weights=(0, 0, 0, 0))
        with pytest.raises(QueryError):
            QueryMix(weights=(1, -1, 1, 1))


class TestGeneration:
    def test_event_count_and_determinism(self):
        mix = QueryMix(n_queries=50)
        a = generate_events(mix, list(range(10)), BOUNDS, np.random.default_rng(3))
        b = generate_events(mix, list(range(10)), BOUNDS, np.random.default_rng(3))
        assert len(a) == 50
        assert a == b

    def test_weights_respected(self):
        mix = QueryMix(n_queries=200, weights=(1, 0, 0, 0))
        events = generate_events(mix, [0, 1], BOUNDS, np.random.default_rng(1))
        assert all(e.kind is QueryKind.PRIVATE_RANGE for e in events)

    def test_user_skew_concentrates_popularity(self):
        mix = QueryMix(n_queries=400, weights=(1, 0, 0, 0), user_skew=2.0)
        events = generate_events(
            mix, list(range(50)), BOUNDS, np.random.default_rng(1)
        )
        first_user_share = sum(1 for e in events if e.subject == 0) / len(events)
        assert first_user_share > 0.3

    def test_count_windows_inside_bounds(self):
        mix = QueryMix(n_queries=80, weights=(0, 0, 1, 0), window_fraction=0.2)
        events = generate_events(mix, [0], BOUNDS, np.random.default_rng(1))
        for event in events:
            assert BOUNDS.contains_rect(event.subject)

    def test_no_users_raises(self):
        with pytest.raises(QueryError):
            generate_events(QueryMix(), [], BOUNDS, np.random.default_rng(0))


class TestExecution:
    def test_full_mix_runs_and_scores(self, system):
        mix = QueryMix(n_queries=40)
        events = generate_events(
            mix, list(range(300)), BOUNDS, np.random.default_rng(5)
        )
        report = run_workload(system, events, samples=256)
        summary = report.summary()
        assert sum(report.executed.values()) == 40
        assert summary["private_accuracy"] == 1.0
        assert summary.get("public_nn_containment", 1.0) >= 0.9

    def test_count_errors_recorded(self, system):
        events = [
            QueryEvent(QueryKind.PUBLIC_COUNT, Rect(10, 10, 60, 60))
            for _ in range(5)
        ]
        report = run_workload(system, events)
        assert len(report.count_abs_error) == 5
        assert report.summary()["count_mean_abs_error"] < 30

    def test_passive_users_excluded_from_truth(self, uniform_points_500):
        from repro.mobility.users import UserMode

        system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=6))
        for i, p in enumerate(uniform_points_500[:100]):
            mode = UserMode.PASSIVE if i >= 50 else UserMode.ACTIVE
            system.add_user(MobileUser(i, p, PrivacyProfile.always(k=5), mode=mode))
        system.publish_all()
        events = [QueryEvent(QueryKind.PUBLIC_NN, Point(50, 50))]
        report = run_workload(system, events, samples=256)
        assert report.nn_total == 1
        assert report.nn_truth_contained == 1
