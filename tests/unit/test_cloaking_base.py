"""Unit tests for the Cloaker base machinery."""

import pytest

from repro.cloaking.base import CloakResult, Cloaker, enforce_area_window
from repro.core.errors import CloakingError, RegistrationError
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)


class FixedCloaker(Cloaker):
    """Test double: always returns a fixed-size square around the user."""

    name = "fixed"

    def __init__(self, bounds, side=10.0):
        super().__init__(bounds)
        self._side = side

    def _cloak(self, user_id, point, requirement):
        return Rect.from_center(point, self._side, self._side)


@pytest.fixture
def cloaker(uniform_points_500):
    c = FixedCloaker(BOUNDS)
    for i, p in enumerate(uniform_points_500):
        c.add_user(i, p)
    return c


class TestPopulation:
    def test_degenerate_bounds_rejected(self):
        with pytest.raises(ValueError):
            FixedCloaker(Rect(0, 0, 0, 10))

    def test_add_duplicate_raises(self, cloaker):
        with pytest.raises(RegistrationError):
            cloaker.add_user(0, Point(1, 1))

    def test_add_outside_bounds_raises(self, cloaker):
        with pytest.raises(RegistrationError):
            cloaker.add_user("x", Point(-1, 0))

    def test_move_unknown_raises(self, cloaker):
        with pytest.raises(RegistrationError):
            cloaker.move_user("ghost", Point(1, 1))

    def test_remove_unknown_raises(self, cloaker):
        with pytest.raises(RegistrationError):
            cloaker.remove_user("ghost")

    def test_location_roundtrip(self, cloaker):
        cloaker.move_user(0, Point(50, 60))
        assert cloaker.location_of(0) == Point(50, 60)

    def test_user_count(self, cloaker):
        assert cloaker.user_count() == 500
        cloaker.remove_user(0)
        assert cloaker.user_count() == 499

    def test_stats_track_updates(self, cloaker):
        before = cloaker.stats.updates
        cloaker.move_user(1, Point(2, 2))
        assert cloaker.stats.updates == before + 1


class TestCounting:
    def test_count_in_matches_brute_force(self, cloaker, uniform_points_500):
        window = Rect(20, 20, 60, 70)
        expected = sum(1 for p in uniform_points_500 if window.contains_point(p))
        assert cloaker.count_in(window) == expected

    def test_users_in_matches_count(self, cloaker):
        window = Rect(0, 0, 35, 35)
        assert len(cloaker.users_in(window)) == cloaker.count_in(window)

    def test_count_after_moves(self, cloaker):
        window = Rect(0, 0, 1, 1)
        base = cloaker.count_in(window)
        cloaker.move_user(0, Point(0.5, 0.5))
        assert cloaker.count_in(window) == base + 1

    def test_empty_cloaker_counts_zero(self):
        assert FixedCloaker(BOUNDS).count_in(BOUNDS) == 0
        assert FixedCloaker(BOUNDS).users_in(BOUNDS) == []


class TestCloak:
    def test_result_contains_user_and_is_clipped(self, cloaker):
        # A user near the corner gets a clipped region.
        cloaker.add_user("corner", Point(1, 1))
        result = cloaker.cloak("corner", PrivacyRequirement(k=1))
        assert BOUNDS.contains_rect(result.region)
        assert result.region.contains_point(Point(1, 1))

    def test_user_count_measured(self, cloaker):
        result = cloaker.cloak(0, PrivacyRequirement(k=1))
        assert result.user_count == cloaker.count_in(result.region)

    def test_k_larger_than_population_raises(self, cloaker):
        with pytest.raises(CloakingError, match="exceeds"):
            cloaker.cloak(0, PrivacyRequirement(k=501))

    def test_unknown_user_raises(self, cloaker):
        with pytest.raises(RegistrationError):
            cloaker.cloak("ghost", PrivacyRequirement(k=1))

    def test_stats_count_cloaks(self, cloaker):
        before = cloaker.stats.cloaks
        cloaker.cloak(0, PrivacyRequirement(k=1))
        assert cloaker.stats.cloaks == before + 1

    def test_default_partition_key_is_none(self, cloaker):
        assert cloaker.partition_key(0, Point(1, 1), PrivacyRequirement()) is None


class TestCloakResult:
    def test_satisfaction_flags(self):
        result = CloakResult(
            region=Rect(0, 0, 2, 2),
            user_count=5,
            requirement=PrivacyRequirement(k=5, min_area=1.0, max_area=10.0),
        )
        assert result.k_satisfied
        assert result.area_satisfied
        assert result.fully_satisfied
        assert result.area == 4.0

    def test_unsatisfied_k(self):
        result = CloakResult(
            region=Rect(0, 0, 2, 2), user_count=3, requirement=PrivacyRequirement(k=5)
        )
        assert not result.k_satisfied
        assert not result.fully_satisfied

    def test_area_violation(self):
        result = CloakResult(
            region=Rect(0, 0, 10, 10),
            user_count=5,
            requirement=PrivacyRequirement(k=5, max_area=50.0),
        )
        assert result.k_satisfied and not result.area_satisfied


class TestEnforceAreaWindow:
    def test_grows_to_min_area(self):
        region = Rect(49, 49, 51, 51)
        out = enforce_area_window(
            region, PrivacyRequirement(k=1, min_area=100.0), BOUNDS, min_region=region
        )
        assert out.area >= 100.0
        assert out.contains_rect(region)

    def test_shrinks_toward_max_area(self):
        region = Rect(0, 0, 50, 50)
        core = Rect(20, 20, 30, 30)
        out = enforce_area_window(
            region, PrivacyRequirement(k=1, max_area=400.0), BOUNDS, min_region=core
        )
        assert out.area <= 400.0 + 1e-9
        assert out.contains_rect(core)

    def test_never_shrinks_below_min_region(self):
        region = Rect(10, 10, 40, 40)
        out = enforce_area_window(
            region, PrivacyRequirement(k=1, max_area=1.0), BOUNDS, min_region=region
        )
        # k-carrying region wins over A_max.
        assert out.contains_rect(region)

    def test_result_inside_bounds(self):
        region = Rect(0, 0, 1, 1)
        out = enforce_area_window(
            region,
            PrivacyRequirement(k=1, min_area=2500.0),
            BOUNDS,
            min_region=region,
        )
        assert BOUNDS.contains_rect(out)
        assert out.area >= 2500.0 - 1e-6
