"""Unit tests for the HTTP telemetry endpoint (repro.obs.serve)."""

import json
import random

import pytest

from repro import MobileUser, PrivacyProfile, PrivacySystem, PyramidCloaker
from repro.geometry import Point, Rect
from repro.obs.serve import (
    ENDPOINT_PATHS,
    TelemetryEndpoint,
    scrape,
    smoke,
    validate_exposition,
)
from repro.obs.slo import EXIT_SLO_VIOLATION, SLOMonitor, SLOSpec

BOUNDS = Rect(0, 0, 100, 100)


def build_system(users=25, pois=10, seed=0):
    system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=5))
    rng = random.Random(seed)
    for j in range(pois):
        system.add_poi(f"poi-{j}", Point(rng.uniform(0, 100), rng.uniform(0, 100)))
    for i in range(users):
        system.add_user(
            MobileUser(
                f"u{i}",
                Point(rng.uniform(0, 100), rng.uniform(0, 100)),
                PrivacyProfile.always(k=4),
            )
        )
    system.publish_all()
    return system


class TestValidateExposition:
    def test_real_exposition_is_valid(self):
        from repro.obs.export import to_prometheus

        system = build_system()
        assert validate_exposition(to_prometheus(system.telemetry())) == []

    def test_flags_malformed_sample(self):
        assert validate_exposition("not a metric line at all!!\n")

    def test_flags_non_numeric_value(self):
        problems = validate_exposition("repro_thing_total NaNsense\n")
        assert problems

    def test_flags_unbalanced_quotes(self):
        problems = validate_exposition('repro_x{label="oops} 1\n')
        assert any("quote" in p or "malformed" in p for p in problems)

    def test_flags_missing_trailing_newline(self):
        assert validate_exposition("repro_x 1") == [
            "exposition must end with a newline"
        ]

    def test_accepts_help_and_type_comments(self):
        text = "# HELP repro_x something\n# TYPE repro_x counter\nrepro_x 1\n"
        assert validate_exposition(text) == []


class TestRouting:
    def test_metrics_route(self):
        endpoint = TelemetryEndpoint(build_system())
        status, content_type, body = endpoint.respond("/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert validate_exposition(body) == []

    def test_health_route_healthy(self):
        endpoint = TelemetryEndpoint(build_system())
        status, content_type, body = endpoint.respond("/health")
        assert status == 200
        payload = json.loads(body)
        assert payload["healthy"] is True

    def test_health_route_503_on_violation(self):
        system = build_system()
        # An impossible objective: any attainment evidence violates it.
        monitor = SLOMonitor(
            [
                SLOSpec(
                    name="impossible",
                    kind="attainment_rate",
                    target=2.0,
                    description="cannot hold",
                )
            ]
        )
        endpoint = TelemetryEndpoint(system, slo_monitor=monitor)
        status, _, body = endpoint.respond("/health")
        payload = json.loads(body)
        assert status == 503
        assert payload["healthy"] is False
        assert payload["exit_code"] == EXIT_SLO_VIOLATION

    def test_risk_route(self):
        endpoint = TelemetryEndpoint(build_system())
        status, _, body = endpoint.respond("/risk")
        assert status == 200
        assert json.loads(body)["schema"] == "repro.obs.risk/1"

    def test_timeseries_route_samples_when_due(self):
        system = build_system()
        system.enable_monitoring(interval=0.0)  # every scrape cuts a window
        endpoint = TelemetryEndpoint(system)
        status, _, body = endpoint.respond("/timeseries")
        assert status == 200
        payload = json.loads(body)
        assert payload["schema"] == "repro.obs.timeseries/1"
        assert payload["windows_cut"] >= 1

    def test_index_and_404(self):
        endpoint = TelemetryEndpoint(build_system())
        status, _, body = endpoint.respond("/")
        assert status == 200
        assert json.loads(body)["paths"] == list(ENDPOINT_PATHS)
        status, _, body = endpoint.respond("/nope")
        assert status == 404

    def test_query_string_and_trailing_slash_ignored(self):
        endpoint = TelemetryEndpoint(build_system())
        assert endpoint.respond("/risk/?pretty=1")[0] == 200

    def test_ctor_enables_monitoring(self):
        system = build_system()
        assert system.risk is None
        TelemetryEndpoint(system)
        assert system.risk is not None and system.timeseries is not None


class TestLiveSocket:
    def test_serves_over_real_socket(self):
        endpoint = TelemetryEndpoint(build_system())
        host, port = endpoint.start(port=0)
        try:
            status, body = scrape(host, port, "/metrics")
            assert status == 200
            assert validate_exposition(body) == []
            status, body = scrape(host, port, "/health")
            assert status == 200
        finally:
            endpoint.shutdown()
        assert not endpoint.running

    def test_double_start_refused_shutdown_idempotent(self):
        endpoint = TelemetryEndpoint(build_system())
        endpoint.start(port=0)
        with pytest.raises(RuntimeError):
            endpoint.start(port=0)
        endpoint.shutdown()
        endpoint.shutdown()  # idempotent

    def test_smoke_passes_end_to_end(self):
        result = smoke(build_system())
        assert result["ok"], result["problems"]
        assert set(result["checks"]) == set(ENDPOINT_PATHS)


class TestCLI:
    def test_serve_metrics_smoke_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "serve-metrics",
                "--smoke",
                "--users",
                "30",
                "--queries",
                "3",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_serve_metrics_bounded_loop(self, capsys):
        from repro.cli import main

        code = main(
            [
                "serve-metrics",
                "--users",
                "30",
                "--queries",
                "2",
                "--iterations",
                "1",
                "--interval",
                "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving telemetry on http://" in out

    def test_top_bounded_frames(self, capsys):
        from repro.cli import main

        code = main(
            [
                "top",
                "--iterations",
                "2",
                "--interval",
                "0.05",
                "--users",
                "30",
                "--queries",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "time-series" in out
        assert "privacy risk" in out
        assert "SLO health" in out
        assert "-- top tick 2 --" in out
