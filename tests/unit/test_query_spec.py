"""Unit tests for the declarative QuerySpec API."""

import json

import pytest

from repro.core.errors import QueryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.queries.spec import (
    CountSpec,
    KNNSpec,
    NNSpec,
    RangeSpec,
    SPEC_CLASSES,
    dump_specs,
    is_user_bound,
    load_specs,
    spec_from_dict,
    spec_to_dict,
)

WINDOW = Rect(10, 10, 40, 40)
REGION = Rect(20, 20, 30, 30)
POINT = Point(25, 25)


class TestValidation:
    def test_public_range_needs_window(self):
        with pytest.raises(QueryError, match="window"):
            RangeSpec(flavor="public")

    def test_public_range_rejects_subjects(self):
        with pytest.raises(QueryError, match="subject"):
            RangeSpec(window=WINDOW, user="alice")

    def test_private_range_needs_exactly_one_subject(self):
        with pytest.raises(QueryError, match="exactly one"):
            RangeSpec(flavor="private", radius=5.0)
        with pytest.raises(QueryError, match="exactly one"):
            RangeSpec(flavor="private", user="a", region=REGION, radius=5.0)

    def test_private_range_rejects_window_and_bad_values(self):
        with pytest.raises(QueryError, match="radius"):
            RangeSpec(flavor="private", user="a", window=WINDOW)
        with pytest.raises(QueryError, match="non-negative"):
            RangeSpec(flavor="private", user="a", radius=-1.0)
        with pytest.raises(QueryError, match="method"):
            RangeSpec(flavor="private", user="a", radius=1.0, method="magic")

    def test_bad_flavor_rejected_everywhere(self):
        for build in (
            lambda: RangeSpec(flavor="secret", window=WINDOW),
            lambda: NNSpec(flavor="secret", point=POINT),
            lambda: KNNSpec(flavor="secret", point=POINT),
            lambda: CountSpec(window=WINDOW, flavor="secret"),
        ):
            with pytest.raises(QueryError, match="flavor"):
                build()

    def test_public_nn_needs_point(self):
        with pytest.raises(QueryError, match="point"):
            NNSpec(flavor="public")

    def test_private_nn_rejects_point_and_private_dataset(self):
        with pytest.raises(QueryError, match="subject"):
            NNSpec(flavor="private", user="a", point=POINT)
        with pytest.raises(QueryError, match="dataset"):
            NNSpec(flavor="private", user="a", dataset="private")

    def test_knn_positive_k(self):
        with pytest.raises(QueryError, match="k must be positive"):
            KNNSpec(point=POINT, k=0)

    def test_count_has_no_private_flavor(self):
        # The paper reduces private-over-private to the public quadrants
        # (end of Section 6.1) — the spec layer enforces the reduction.
        with pytest.raises(QueryError, match="reduces"):
            CountSpec(window=WINDOW, flavor="private")

    def test_specs_are_frozen(self):
        spec = CountSpec(window=WINDOW)
        with pytest.raises(Exception):
            spec.window = REGION

    def test_is_user_bound(self):
        assert is_user_bound(RangeSpec(flavor="private", user=1, radius=2.0))
        assert not is_user_bound(
            RangeSpec(flavor="private", region=REGION, radius=2.0)
        )
        assert not is_user_bound(CountSpec(window=WINDOW))


ROUND_TRIP_SPECS = [
    RangeSpec(window=WINDOW),
    RangeSpec(flavor="private", user="alice", radius=7.5, method="mbr"),
    RangeSpec(flavor="private", region=REGION, radius=3.0),
    NNSpec(point=POINT),
    NNSpec(dataset="private", point=POINT, samples=512, seed=9),
    NNSpec(flavor="private", user=3, method="exact"),
    NNSpec(flavor="private", region=REGION),
    KNNSpec(point=POINT, k=5),
    KNNSpec(flavor="private", user="bob", k=3, method="range"),
    CountSpec(window=WINDOW),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec", ROUND_TRIP_SPECS, ids=lambda s: f"{s.kind}-{s.flavor}"
    )
    def test_dict_round_trip(self, spec):
        record = spec_to_dict(spec)
        assert record["kind"] == spec.kind
        assert spec_from_dict(record) == spec

    def test_workload_round_trips_through_json_text(self):
        text = json.dumps(dump_specs(ROUND_TRIP_SPECS))
        assert load_specs(json.loads(text)) == ROUND_TRIP_SPECS

    def test_none_fields_omitted(self):
        record = spec_to_dict(CountSpec(window=WINDOW))
        assert "user" not in record and "region" not in record
        assert record["window"] == [10.0, 10.0, 40.0, 40.0]

    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError, match="unknown spec kind"):
            spec_from_dict({"kind": "teleport"})

    def test_unknown_field_rejected(self):
        with pytest.raises(QueryError, match="unknown fields"):
            spec_from_dict({"kind": "count", "window": [0, 0, 1, 1], "x": 1})

    def test_non_scalar_user_id_rejected(self):
        spec = RangeSpec(flavor="private", user=("tuple", "id"), radius=1.0)
        with pytest.raises(QueryError, match="JSON-serialisable"):
            spec_to_dict(spec)

    def test_registry_covers_all_kinds(self):
        assert set(SPEC_CLASSES) == {"range", "nn", "knn", "count"}


class TestDeprecatedWrappers:
    def test_legacy_query_methods_warn_at_the_call_site(self):
        """The pre-QuerySpec convenience wrappers still work, but each
        call raises exactly one DeprecationWarning attributed (via
        stacklevel=2) to the caller's line, not to system.py."""
        import warnings

        from repro import MobileUser, PrivacyProfile, PrivacySystem, PyramidCloaker

        bounds = Rect(0, 0, 50, 50)
        system = PrivacySystem(bounds, PyramidCloaker(bounds, height=4))
        system.add_poi("p", Point(10, 10))
        system.add_user(MobileUser("u", Point(20, 20), PrivacyProfile.always(k=1)))
        system.publish_all()

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            system.user_range_query("u", radius=15.0)
            system.user_nn_query("u")
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 2
        assert "user_range_query" in str(deprecations[0].message)
        assert "QuerySpec" in str(deprecations[0].message) or "query(" in str(
            deprecations[0].message
        )
        assert "user_nn_query" in str(deprecations[1].message)
        # stacklevel=2: the warning points here, not into system.py.
        for warning in deprecations:
            assert warning.filename == __file__
