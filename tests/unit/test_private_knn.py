"""Unit tests for private k-NN queries (extension of Figure 5b)."""

import pytest

from repro.core.errors import QueryError
from repro.core.stores import PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.sampling import uniform_points
from repro.queries.private_knn import (
    exact_knn_answer,
    private_knn_query,
    refine_knn_candidates,
)
from repro.queries.private_nn import private_nn_query


@pytest.fixture
def store(uniform_points_500):
    s = PublicStore()
    for i, p in enumerate(uniform_points_500):
        s.add(i, p)
    return s


REGION = Rect(30, 55, 48, 70)


class TestGuarantee:
    @pytest.mark.parametrize("k", [1, 3, 8])
    @pytest.mark.parametrize("method", ["range", "filter"])
    def test_all_k_nearest_always_candidates(self, store, rng, k, method):
        result = private_knn_query(store, REGION, k, method)
        for p in uniform_points(REGION, 300, rng):
            truth = exact_knn_answer(store, p, k)
            assert set(truth) <= set(result.candidates), (k, method)

    def test_filter_subset_of_range(self, store):
        for k in (1, 4, 10):
            f = private_knn_query(store, REGION, k, "filter")
            r = private_knn_query(store, REGION, k, "range")
            assert set(f.candidates) <= set(r.candidates)
            assert len(f.candidates) >= k

    def test_k1_consistent_with_private_nn(self, store):
        knn = private_knn_query(store, REGION, 1, "filter")
        nn = private_nn_query(store, REGION, "filter")
        # Both are sound supersets of the same exact set; the k-NN one must
        # at least contain every NN candidate.
        assert set(nn.candidates) <= set(knn.candidates)

    def test_candidates_grow_with_k(self, store):
        sizes = [
            len(private_knn_query(store, REGION, k, "filter").candidates)
            for k in (1, 3, 6, 12)
        ]
        assert sizes == sorted(sizes)

    def test_degenerate_region_is_classic_knn(self, store, uniform_points_500):
        p = uniform_points_500[5]
        result = private_knn_query(store, Rect.from_point(p), 5, "filter")
        truth = exact_knn_answer(store, p, 5)
        refined = refine_knn_candidates(store, result, p)
        assert refined == truth


class TestEdgeCases:
    def test_k_capped_at_store_size(self):
        store = PublicStore()
        for i in range(3):
            store.add(i, Point(10.0 * i, 0))
        result = private_knn_query(store, Rect(0, 0, 5, 5), 10)
        assert result.k == 3
        assert set(result.candidates) == {0, 1, 2}

    def test_invalid_k_raises(self, store):
        with pytest.raises(QueryError):
            private_knn_query(store, REGION, 0)

    def test_empty_store_raises(self):
        with pytest.raises(QueryError):
            private_knn_query(PublicStore(), REGION, 1)

    def test_unknown_method_raises(self, store):
        with pytest.raises(QueryError):
            private_knn_query(store, REGION, 2, "fancy")

    def test_refine_empty_raises(self, store):
        from repro.queries.private_knn import PrivateKNNResult

        empty = PrivateKNNResult(
            region=REGION, k=2, candidates=(), method="filter", pruning_radius=0.0
        )
        with pytest.raises(QueryError):
            refine_knn_candidates(store, empty, Point(0, 0))

    def test_exact_knn_empty_store_raises(self):
        with pytest.raises(QueryError):
            exact_knn_answer(PublicStore(), Point(0, 0), 1)


class TestRefinement:
    def test_refined_matches_truth_everywhere(self, store, rng):
        result = private_knn_query(store, REGION, 4, "filter")
        for p in uniform_points(REGION, 60, rng):
            refined = refine_knn_candidates(store, result, p)
            truth = exact_knn_answer(store, p, 4)
            got = sorted(store.point_of(i).distance_to(p) for i in refined)
            want = sorted(store.point_of(i).distance_to(p) for i in truth)
            assert got == pytest.approx(want)

    def test_transmission_size(self, store):
        result = private_knn_query(store, REGION, 3, "filter")
        assert result.transmission_size == len(result.candidates)
