"""Unit tests for spatio-temporal cloaking."""

import pytest

from repro.cloaking.temporal import TemporalCloaker
from repro.core.errors import RegistrationError
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)


def make(region_side=10.0, window=100.0, max_delay=None):
    return TemporalCloaker(
        BOUNDS, region_side=region_side, window=window, max_delay=max_delay
    )


class TestValidation:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make(region_side=0)
        with pytest.raises(ValueError):
            make(window=0)
        with pytest.raises(ValueError):
            make(max_delay=-1)

    def test_observe_outside_bounds(self):
        cloaker = make()
        with pytest.raises(RegistrationError):
            cloaker.observe(0.0, "u", Point(200, 0))

    def test_out_of_order_observation(self):
        cloaker = make()
        cloaker.observe(5.0, "u", Point(1, 1))
        with pytest.raises(ValueError):
            cloaker.observe(4.0, "u", Point(1, 1))

    def test_request_unknown_user(self):
        with pytest.raises(RegistrationError):
            make().request(0.0, "ghost", PrivacyRequirement(k=2))


class TestImmediateRelease:
    def test_dense_region_releases_instantly(self):
        cloaker = make(region_side=20.0)
        for i in range(5):
            cloaker.observe(0.0, i, Point(50 + i, 50))
        result = cloaker.request(0.0, 0, PrivacyRequirement(k=5))
        assert result is not None
        assert result.delay == 0.0
        assert result.visitor_count >= 5
        assert result.region.contains_point(Point(50, 50))

    def test_region_is_fixed_size(self):
        cloaker = make(region_side=8.0)
        cloaker.observe(0.0, "u", Point(50, 50))
        result = cloaker.request(0.0, "u", PrivacyRequirement(k=1))
        assert result.region.area == pytest.approx(64.0)

    def test_region_shifted_into_bounds_at_corner(self):
        cloaker = make(region_side=8.0)
        cloaker.observe(0.0, "u", Point(1, 1))
        result = cloaker.request(0.0, "u", PrivacyRequirement(k=1))
        assert BOUNDS.contains_rect(result.region)
        assert result.region.area == pytest.approx(64.0)
        assert result.region.contains_point(Point(1, 1))


class TestDelayedRelease:
    def test_release_once_kth_visitor_arrives(self):
        cloaker = make(region_side=10.0)
        cloaker.observe(0.0, "victim", Point(50, 50))
        pending = cloaker.request(0.0, "victim", PrivacyRequirement(k=3))
        assert pending is None
        assert cloaker.pending_count == 1
        cloaker.observe(1.0, "a", Point(51, 50))
        assert cloaker.tick(1.0) == []  # only 2 visitors so far
        cloaker.observe(2.0, "b", Point(49, 50))
        released = cloaker.tick(2.0)
        assert len(released) == 1
        assert released[0].delay == pytest.approx(2.0)
        assert released[0].visitor_count == 3
        assert cloaker.pending_count == 0

    def test_visitors_accumulate_over_time_not_space(self):
        """The essence of temporal cloaking: k users need not be
        simultaneous, just within the window."""
        cloaker = make(region_side=6.0, window=100.0)
        cloaker.observe(0.0, "victim", Point(50, 50))
        cloaker.request(0.0, "victim", PrivacyRequirement(k=4))
        # One user passes through per step, each leaving afterwards.
        for step, uid in enumerate(["a", "b", "c"], start=1):
            cloaker.observe(float(step), uid, Point(50, 50))
            cloaker.observe(float(step) + 0.5, uid, Point(90, 90))
            cloaker.tick(float(step) + 0.5)
        assert len(cloaker.released) == 1
        assert cloaker.released[0].visitor_count >= 4

    def test_window_expiry_forgets_old_visitors(self):
        cloaker = make(region_side=6.0, window=2.0)
        cloaker.observe(0.0, "a", Point(50, 50))
        cloaker.observe(0.0, "b", Point(50, 51))
        cloaker.observe(10.0, "victim", Point(50, 50))
        # a and b are long gone from the window.
        assert cloaker.request(10.0, "victim", PrivacyRequirement(k=3)) is None

    def test_max_delay_drops_reports(self):
        cloaker = make(region_side=2.0, max_delay=5.0)
        cloaker.observe(0.0, "victim", Point(50, 50))
        cloaker.request(0.0, "victim", PrivacyRequirement(k=10))
        cloaker.tick(6.0)
        assert cloaker.dropped == 1
        assert cloaker.pending_count == 0

    def test_visitors_in(self):
        cloaker = make()
        cloaker.observe(0.0, "a", Point(10, 10))
        cloaker.observe(0.0, "b", Point(90, 90))
        assert cloaker.visitors_in(Rect(0, 0, 20, 20)) == {"a"}
