"""Unit tests for CliqueCloak personalised group cloaking."""

import pytest

from repro.cloaking.clique import CliqueCloak, CliqueRequest, _compatible
from repro.core.errors import RegistrationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)


def req(user_id, x, y, k=2, tolerance=10.0, t=0.0):
    return CliqueRequest(user_id, Point(x, y), k, tolerance, t)


class TestCompatibility:
    def test_mutual_containment(self):
        assert _compatible(req("a", 50, 50), req("b", 55, 50))

    def test_asymmetric_tolerance_blocks(self):
        wide = req("a", 50, 50, tolerance=20.0)
        narrow = req("b", 62, 50, tolerance=5.0)
        # a is outside b's narrow box even though b is inside a's.
        assert not _compatible(wide, narrow)

    def test_far_apart_incompatible(self):
        assert not _compatible(req("a", 0, 0), req("b", 90, 90))


class TestServing:
    def test_pair_served_immediately(self):
        cloak = CliqueCloak(BOUNDS)
        assert cloak.request(0.0, "a", Point(50, 50), k=2, tolerance=10) is None
        result = cloak.request(1.0, "b", Point(53, 50), k=2, tolerance=10)
        assert result is not None
        assert set(result.members) == {"a", "b"}
        assert result.region.contains_point(Point(50, 50))
        assert result.region.contains_point(Point(53, 50))
        assert cloak.pending_count == 0
        assert result.max_delay_experienced == pytest.approx(1.0)

    def test_region_within_every_members_tolerance(self):
        cloak = CliqueCloak(BOUNDS)
        cloak.request(0.0, "a", Point(50, 50), k=3, tolerance=8)
        cloak.request(0.0, "b", Point(54, 52), k=2, tolerance=8)
        result = cloak.request(0.0, "c", Point(47, 53), k=2, tolerance=8)
        assert result is not None
        for member_point, tol in [
            (Point(50, 50), 8),
            (Point(54, 52), 8),
            (Point(47, 53), 8),
        ]:
            box = Rect.from_center(member_point, 2 * tol, 2 * tol)
            assert box.contains_rect(result.region)

    def test_personalized_k_group_grows_to_largest(self):
        cloak = CliqueCloak(BOUNDS)
        cloak.request(0.0, "picky", Point(50, 50), k=4, tolerance=15)
        cloak.request(0.0, "easy1", Point(52, 50), k=2, tolerance=15)
        # easy pair could form, but "picky" seeded first and needs 4;
        # easy1+easy2 form their own pair when easy2 arrives.
        result = cloak.request(0.0, "easy2", Point(51, 49), k=2, tolerance=15)
        assert result is not None
        assert "picky" not in result.members or len(result.members) >= 4

    def test_incompatible_requests_wait(self):
        cloak = CliqueCloak(BOUNDS)
        assert cloak.request(0.0, "a", Point(10, 10), k=2, tolerance=3) is None
        assert cloak.request(0.0, "b", Point(90, 90), k=2, tolerance=3) is None
        assert cloak.pending_count == 2

    def test_pending_high_k_piggybacks_on_later_arrivals(self):
        cloak = CliqueCloak(BOUNDS)
        cloak.request(0.0, "a", Point(50, 50), k=3, tolerance=10)
        # b alone cannot serve a (group of 2 < a's k=3), so both wait.
        assert cloak.request(1.0, "b", Point(52, 50), k=2, tolerance=10) is None
        assert cloak.pending_count == 2
        # c's arrival completes the 3-clique; a's wait is the longest.
        result = cloak.request(2.0, "c", Point(51, 53), k=2, tolerance=10)
        assert result is not None
        assert set(result.members) == {"a", "b", "c"}
        assert result.max_delay_experienced == pytest.approx(2.0)
        assert cloak.pending_count == 0

    def test_tick_retries_pending(self):
        cloak = CliqueCloak(BOUNDS)
        cloak.request(0.0, "a", Point(50, 50), k=2, tolerance=10)
        # An incompatible request cannot pair...
        cloak.request(0.0, "far", Point(5, 5), k=2, tolerance=3)
        assert cloak.tick(1.0) == []
        # ...until a compatible one shows up; tick drains the backlog.
        cloak.request(2.0, "b", Point(51, 51), k=2, tolerance=10)
        flat = {m for r in cloak.served for m in r.members}
        assert {"a", "b"} <= flat

    def test_k1_request_served_alone(self):
        cloak = CliqueCloak(BOUNDS)
        result = cloak.request(0.0, "solo", Point(5, 5), k=1, tolerance=2)
        assert result is not None
        assert result.members == ("solo",)
        assert result.region.area == 0.0  # single-point MBR


class TestLifecycle:
    def test_duplicate_pending_raises(self):
        cloak = CliqueCloak(BOUNDS)
        cloak.request(0.0, "a", Point(10, 10), k=5, tolerance=2)
        with pytest.raises(RegistrationError):
            cloak.request(1.0, "a", Point(11, 10), k=5, tolerance=2)

    def test_cancel(self):
        cloak = CliqueCloak(BOUNDS)
        cloak.request(0.0, "a", Point(10, 10), k=5, tolerance=2)
        cloak.cancel("a")
        assert cloak.pending_count == 0
        with pytest.raises(RegistrationError):
            cloak.cancel("a")

    def test_max_delay_drops(self):
        cloak = CliqueCloak(BOUNDS, max_delay=5.0)
        cloak.request(0.0, "a", Point(10, 10), k=9, tolerance=1)
        cloak.tick(6.0)
        assert cloak.dropped == 1
        assert cloak.pending_count == 0

    def test_validation(self):
        cloak = CliqueCloak(BOUNDS)
        with pytest.raises(RegistrationError):
            cloak.request(0.0, "a", Point(-5, 0), k=2, tolerance=1)
        with pytest.raises(ValueError):
            cloak.request(0.0, "a", Point(5, 5), k=0, tolerance=1)
        with pytest.raises(ValueError):
            cloak.request(0.0, "a", Point(5, 5), k=2, tolerance=-1)
        with pytest.raises(ValueError):
            CliqueCloak(BOUNDS, max_delay=-1)


class TestReciprocity:
    def test_all_members_share_one_region(self, rng):
        """The property snapshot kNN-MBR lacks: group members are mutually
        indistinguishable because they publish the same region."""
        cloak = CliqueCloak(BOUNDS)
        results = []
        for i in range(60):
            x, y = rng.uniform(40, 60, 2)
            outcome = cloak.request(
                float(i), i, Point(float(x), float(y)), k=5, tolerance=12
            )
            if outcome is not None:
                results.append(outcome)
        assert results, "dense arrivals must produce served groups"
        for result in results:
            assert result.group_size >= 5
            # One region per group, containing every member's point by MBR
            # construction — checked via the result invariants.
            assert BOUNDS.contains_rect(result.region)
