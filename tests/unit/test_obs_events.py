"""The structured event log (repro.obs.events) and its pipeline wiring."""

import io
import json

import numpy as np
import pytest

from repro import MobileUser, PrivacyProfile, PrivacySystem, PyramidCloaker
from repro.geometry import Point, Rect
from repro.obs import EVENT_KINDS, Event, EventLog, MetricsRegistry, Telemetry
from repro.obs.events import (
    BATCH_EXECUTED,
    CANDIDATES_GENERATED,
    CLOAK_ATTEMPT,
    CLOAK_BATCH,
    CLOAK_RESULT,
    QUERY_COMPLETED,
    REGION_PUBLISHED,
    SNAPSHOT_CAPTURED,
    SNAPSHOT_REUSED,
    USER_ADMITTED,
    USER_RETIRED,
    read_jsonl,
)


class TestEvent:
    def test_to_dict_flattens_attrs(self):
        event = Event(3, "cloak.result", {"user": "u1", "k": 5})
        assert event.to_dict() == {"seq": 3, "kind": "cloak.result", "user": "u1", "k": 5}

    def test_from_dict_round_trips(self):
        event = Event(7, "query.completed", {"overhead": 2.5, "correct": True})
        assert Event.from_dict(event.to_dict()) == event

    def test_kinds_are_unique_and_dotted(self):
        assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)
        assert all("." in kind for kind in EVENT_KINDS)


class TestEventLog:
    def test_emit_records_and_returns_seq(self):
        log = EventLog()
        assert log.emit("cloak.attempt", user="a") == 1
        assert log.emit("cloak.result", user="a") == 2
        events = list(log.events())
        assert [e.kind for e in events] == ["cloak.attempt", "cloak.result"]
        assert [e.seq for e in events] == [1, 2]

    def test_disabled_emit_is_dropped_and_returns_none(self):
        log = EventLog(enabled=False)
        assert log.emit("cloak.attempt") is None
        assert len(log) == 0
        log.enable()
        assert log.emit("cloak.attempt") == 1

    def test_ring_buffer_bounds_memory(self):
        log = EventLog(keep=4)
        for i in range(10):
            log.emit("cloak.attempt", i=i)
        events = list(log.events())
        # Ring holds 4; a pinned log.truncated marker declares the six
        # events that fell off without ever reaching a sink.
        assert len(log) == 4
        assert len(events) == 5
        marker, *kept = events
        assert marker.kind == "log.truncated"
        assert marker.attrs == {
            "first_seq": 1,
            "last_seq": 6,
            "lost": 6,
            "flushed_seq": 0,
        }
        # Oldest fell off the front; sequence numbers keep counting.
        assert [e.attrs["i"] for e in kept] == [6, 7, 8, 9]
        assert kept[-1].seq == 10

    def test_kind_filter_and_counts(self):
        log = EventLog()
        log.emit("cloak.attempt")
        log.emit("cloak.result")
        log.emit("cloak.attempt")
        assert len(list(log.events("cloak.attempt"))) == 2
        assert log.counts() == {"cloak.attempt": 2, "cloak.result": 1}

    def test_registry_counters_tallied_per_kind(self):
        registry = MetricsRegistry()
        log = EventLog(registry)
        log.emit("cloak.attempt")
        log.emit("cloak.attempt")
        log.emit("cloak.result")
        counters = registry.snapshot()["counters"]
        assert counters["events.emitted{kind=cloak.attempt}"] == 2
        assert counters["events.emitted{kind=cloak.result}"] == 1

    def test_reset_clears_ring_but_not_sequence(self):
        log = EventLog()
        log.emit("cloak.attempt")
        log.reset()
        assert len(log) == 0
        assert log.emit("cloak.attempt") == 2


class TestTruncationMarker:
    """The ring is bounded; the WAL must be complete — lossy evictions
    leave a pinned ``log.truncated`` marker declaring the gap."""

    def test_no_marker_until_a_lossy_eviction(self):
        log = EventLog(keep=3)
        for _ in range(3):
            log.emit("cloak.attempt")
        assert log.truncated is None
        log.emit("cloak.attempt")  # evicts seq 1, never flushed
        marker = log.truncated
        assert marker is not None and marker.kind == "log.truncated"
        assert marker.attrs["first_seq"] == marker.attrs["last_seq"] == 1
        assert marker.attrs["lost"] == 1

    def test_consecutive_evictions_widen_marker_in_place(self):
        log = EventLog(keep=2)
        for _ in range(6):
            log.emit("cloak.attempt")
        marker = log.truncated
        assert marker.attrs == {
            "first_seq": 1,
            "last_seq": 4,
            "lost": 4,
            "flushed_seq": 0,
        }
        # One marker, not one per eviction.
        events = list(log.events())
        assert sum(1 for e in events if e.kind == "log.truncated") == 1

    def test_streamed_evictions_are_not_lossy(self):
        sink = io.StringIO()
        log = EventLog(keep=2)
        log.attach_jsonl(sink)
        for _ in range(6):
            log.emit("cloak.attempt")
        # Every event reached the sink before falling off the ring.
        assert log.truncated is None
        assert len(sink.getvalue().splitlines()) == 6

    def test_late_attach_backfills_ring_and_declares_prior_loss(self):
        sink = io.StringIO()
        log = EventLog(keep=2)
        log.emit("cloak.attempt")
        log.emit("cloak.attempt")
        log.emit("cloak.attempt")  # seq 1 lost before any sink existed
        log.attach_jsonl(sink)
        for _ in range(4):
            log.emit("cloak.attempt")
        # The attach backfilled the surviving ring (seqs 2, 3) behind the
        # marker declaring seq 1 gone, then streamed 4..7 live: a trail
        # that is complete from seq 2 on and honest about seq 1.
        lines = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert [l["kind"] for l in lines][0] == "log.truncated"
        assert [l["seq"] for l in lines[1:]] == [2, 3, 4, 5, 6, 7]
        # Nothing evicted after the backfill was unflushed, so the
        # marker never widens past the pre-attach loss.
        assert log.truncated.attrs == {
            "first_seq": 1,
            "last_seq": 1,
            "lost": 1,
            "flushed_seq": 0,
        }

    def test_reattach_does_not_duplicate_streamed_events(self):
        first, second = io.StringIO(), io.StringIO()
        log = EventLog(keep=4)
        log.attach_jsonl(first)
        log.emit("cloak.attempt")
        log.emit("cloak.attempt")
        log.detach_jsonl()
        log.emit("cloak.attempt")  # unstreamed, still in ring
        log.attach_jsonl(second)
        log.emit("cloak.attempt")
        # Only the event the first sink never saw is backfilled.
        assert [json.loads(l)["seq"] for l in second.getvalue().splitlines()] == [3, 4]

    def test_reset_clears_the_marker(self):
        log = EventLog(keep=1)
        log.emit("cloak.attempt")
        log.emit("cloak.attempt")
        assert log.truncated is not None
        log.reset()
        assert log.truncated is None

    def test_dump_jsonl_leads_with_marker(self):
        log = EventLog(keep=1)
        log.emit("cloak.attempt")
        log.emit("cloak.result")
        lines = [json.loads(l) for l in log.dump_jsonl().splitlines()]
        assert lines[0]["kind"] == "log.truncated"
        assert lines[1]["kind"] == "cloak.result"

    def test_strict_read_refuses_self_declared_truncation(self):
        log = EventLog(keep=1)
        log.emit("cloak.attempt")
        log.emit("cloak.result")
        trail = log.dump_jsonl().splitlines()
        assert read_jsonl(trail) == list(log.events())  # lenient passes it
        with pytest.raises(ValueError, match="truncation"):
            read_jsonl(trail, strict=True)


class TestJsonl:
    def test_stream_sink_receives_every_event(self):
        sink = io.StringIO()
        log = EventLog()
        log.attach_jsonl(sink)
        log.emit("cloak.result", user="u", area=4.0)
        log.detach_jsonl()
        log.emit("cloak.result", user="v")  # after detach: not streamed
        lines = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert len(lines) == 1
        assert lines[0]["user"] == "u" and lines[0]["area"] == 4.0

    def test_path_sink_appends_and_read_jsonl_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog()
        log.attach_jsonl(str(path))
        log.emit("cloak.attempt", user="a", k=3)
        log.emit("cloak.result", user="a", k=3, area=1.5)
        log.detach_jsonl()
        events = read_jsonl(str(path))
        assert [e.kind for e in events] == ["cloak.attempt", "cloak.result"]
        assert events[1].attrs["area"] == 1.5
        assert events == list(log.events())

    def test_dump_jsonl_matches_ring(self):
        log = EventLog()
        log.emit("cloak.attempt", user="a")
        text = log.dump_jsonl()
        assert read_jsonl(text.splitlines()) == list(log.events())

    def test_dump_jsonl_empty_log_is_empty_string(self):
        assert EventLog().dump_jsonl() == ""

    def test_truncated_final_line_is_dropped(self, tmp_path):
        # A crash mid-write leaves a half-serialised last record; the
        # reader salvages everything before it.
        log = EventLog()
        log.emit("cloak.attempt", user="a")
        log.emit("cloak.result", user="a", area=2.0)
        path = tmp_path / "crashed.jsonl"
        path.write_text(log.dump_jsonl() + '{"seq": 3, "kind": "cloak.re')
        events = read_jsonl(str(path))
        assert [e.kind for e in events] == ["cloak.attempt", "cloak.result"]

    def test_truncated_final_line_raises_in_strict_mode(self, tmp_path):
        path = tmp_path / "crashed.jsonl"
        path.write_text('{"seq": 1, "kind": "cloak.attempt"}\n{"seq": 2, "ki')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(str(path), strict=True)

    def test_mid_file_corruption_still_raises(self, tmp_path):
        # Only the *final* line gets the crash-tolerance benefit of the
        # doubt; garbage in the middle is real corruption.
        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            '{"seq": 1, "kind": "cloak.attempt"}\n'
            "NOT JSON\n"
            '{"seq": 3, "kind": "cloak.result"}\n'
        )
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(str(path))

    def test_trailing_blank_lines_do_not_mask_truncation(self, tmp_path):
        path = tmp_path / "crashed.jsonl"
        path.write_text('{"seq": 1, "kind": "cloak.attempt"}\n{"seq": 2\n\n')
        events = read_jsonl(str(path))
        assert [e.seq for e in events] == [1]


class TestTelemetryIntegration:
    def test_emit_bound_on_telemetry(self):
        obs = Telemetry()
        obs.emit("cloak.attempt", user="x")
        assert [e.kind for e in obs.events.events()] == ["cloak.attempt"]

    def test_events_follow_enabled_by_default(self):
        assert Telemetry(enabled=False).events.enabled is False
        assert Telemetry(enabled=True).events.enabled is True

    def test_events_enabled_override(self):
        obs = Telemetry(enabled=False, events_enabled=True)
        assert obs.events.enabled is True
        obs.emit("cloak.attempt")
        assert len(obs.events) == 1

    def test_snapshot_carries_events_section(self):
        obs = Telemetry()
        obs.emit("cloak.attempt")
        obs.emit("cloak.attempt")
        assert obs.snapshot()["events"] == {"cloak.attempt": 2}

    def test_reset_clears_events(self):
        obs = Telemetry()
        obs.emit("cloak.attempt")
        obs.reset()
        assert len(obs.events) == 0


@pytest.fixture(scope="module")
def worked_system():
    """A small end-to-end workload whose events the tests inspect."""
    rng = np.random.default_rng(3)
    bounds = Rect(0, 0, 100, 100)
    system = PrivacySystem(bounds, PyramidCloaker(bounds, height=6))
    for j in range(15):
        x, y = rng.uniform(0, 100, 2)
        system.add_poi(f"poi-{j}", Point(float(x), float(y)))
    for i in range(60):
        x, y = rng.uniform(0, 100, 2)
        system.add_user(
            MobileUser(i, Point(float(x), float(y)), PrivacyProfile.always(k=5))
        )
    system.publish_all()
    for i in range(6):
        system.user_range_query(i, radius=10.0)
        system.user_nn_query(i)
    return system


class TestPipelineEmission:
    def test_admission_events(self, worked_system):
        admitted = list(worked_system.obs.events.events(USER_ADMITTED))
        assert len(admitted) == 60
        assert admitted[0].attrs["pseudonym"].startswith("anon-")

    def test_cloak_results_carry_audit_payload(self, worked_system):
        results = list(worked_system.obs.events.events(CLOAK_RESULT))
        assert results, "publish_all and queries must emit cloak results"
        for event in results:
            attrs = event.attrs
            assert attrs["k"] == 5
            assert attrs["k_achieved"] >= 1
            assert attrs["area"] >= 0
            assert isinstance(attrs["k_satisfied"], bool)
            assert isinstance(attrs["degraded"], bool)

    def test_cloak_attempts_precede_their_results(self, worked_system):
        # Batch publication emits results directly; the per-user query path
        # goes through cloak_user, where every result follows its attempt.
        events = list(worked_system.obs.events.events())
        attempts = [e for e in events if e.kind == CLOAK_ATTEMPT]
        assert attempts
        first = attempts[0]
        followups = [
            e
            for e in events
            if e.kind == CLOAK_RESULT
            and e.seq > first.seq
            and e.attrs["user"] == first.attrs["user"]
        ]
        assert followups

    def test_shared_publish_emits_batch_summary(self, worked_system):
        batches = list(worked_system.obs.events.events(CLOAK_BATCH))
        assert batches
        summary = batches[0].attrs
        assert summary["requests"] == summary["computed"] + summary["shared"]
        assert 0.0 <= summary["sharing_ratio"] <= 1.0

    def test_region_published_per_user(self, worked_system):
        published = list(worked_system.obs.events.events(REGION_PUBLISHED))
        assert len(published) >= 60
        assert all(e.attrs["area"] >= 0 for e in published)

    def test_candidates_and_query_completion(self, worked_system):
        candidates = list(worked_system.obs.events.events(CANDIDATES_GENERATED))
        completed = list(worked_system.obs.events.events(QUERY_COMPLETED))
        assert len(candidates) >= 12  # 6 range + 6 nn
        assert len(completed) == 12
        for event in completed:
            assert event.attrs["overhead"] >= 1.0
            assert event.attrs["query"] in ("private_range", "private_nn")

    def test_unregister_emits_retirement(self):
        bounds = Rect(0, 0, 10, 10)
        system = PrivacySystem(bounds, PyramidCloaker(bounds, height=3))
        system.add_user(MobileUser(0, Point(5, 5), PrivacyProfile.always(k=1)))
        system.anonymizer.unregister(0)
        retired = list(system.obs.events.events(USER_RETIRED))
        assert len(retired) == 1 and retired[0].attrs["user"] == "0"


class TestEngineEmission:
    def test_snapshot_capture_then_reuse(self):
        from repro.core.server import LocationServer
        from repro.core.stores import PublicStore
        from repro.engine import PublicRangeQuery

        server = LocationServer(telemetry=Telemetry())
        server.public = PublicStore.from_points({i: Point(i, i) for i in range(5)})
        batch = [PublicRangeQuery(Rect(0, 0, 3, 3))]
        server.execute_batch(batch)
        server.execute_batch(batch)
        events = server.telemetry.events
        assert len(list(events.events(SNAPSHOT_CAPTURED))) == 1
        assert len(list(events.events(SNAPSHOT_REUSED))) == 1
        executed = list(events.events(BATCH_EXECUTED))
        assert len(executed) == 2
        assert executed[0].attrs["kinds"] == {"public_range": 1}
