"""Unit tests for the k-d tree index."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.kdtree import KDTree


def brute_range(points, window):
    return sorted(i for i, p in points.items() if window.contains_point(p))


@pytest.fixture
def loaded(uniform_points_500):
    points = dict(enumerate(uniform_points_500))
    return KDTree.build(points), points


class TestBulkBuild:
    def test_build_and_len(self, loaded):
        tree, points = loaded
        assert len(tree) == len(points)
        assert tree.buffered == 0

    def test_range_matches_brute_force(self, loaded):
        tree, points = loaded
        for window in [
            Rect(0, 0, 100, 100),
            Rect(22, 31, 47, 59),
            Rect(-5, -5, 0, 0),
            Rect(50, 50, 50.1, 50.1),
        ]:
            assert sorted(tree.range_query(window)) == brute_range(points, window)

    def test_knn_matches_brute_force(self, loaded, rng):
        tree, points = loaded
        for _ in range(15):
            q = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            got = [points[i].distance_to(q) for i in tree.nearest(q, 6)]
            expected = sorted(p.distance_to(q) for p in points.values())[:6]
            assert sorted(got) == pytest.approx(expected)

    def test_empty_tree(self):
        tree = KDTree()
        assert tree.range_query(Rect(0, 0, 1, 1)) == []
        assert tree.nearest(Point(0, 0), 3) == []

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            KDTree(rebuild_fraction=0.0)
        with pytest.raises(ValueError):
            KDTree(rebuild_fraction=1.5)


class TestDynamicUpdates:
    def test_inserts_buffered_then_rebuilt(self):
        tree = KDTree(rebuild_fraction=0.5)
        for i in range(40):
            tree.insert_point(i, Point(float(i), float(i)))
        # Some rebuilds must have happened along the way.
        assert tree.buffered < 40
        assert sorted(tree.range_query(Rect(0, 0, 100, 100))) == list(range(40))

    def test_delete_from_tree_and_buffer(self, loaded):
        tree, points = loaded
        tree.delete(0)  # tree-resident
        tree.insert_point("fresh", Point(1, 1))
        tree.delete("fresh")  # buffer-resident
        assert len(tree) == 499
        window = Rect(0, 0, 100, 100)
        remaining = {i: p for i, p in points.items() if i != 0}
        assert sorted(tree.range_query(window), key=str) == sorted(
            brute_range(remaining, window), key=str
        )

    def test_reinsert_after_delete_uses_new_point(self, loaded):
        tree, points = loaded
        tree.delete(3)
        tree.insert_point(3, Point(99.5, 99.5))
        assert 3 in tree.range_query(Rect(99, 99, 100, 100))
        old_window = Rect.from_center(points[3], 0.01, 0.01)
        assert 3 not in tree.range_query(old_window) or points[3].distance_to(
            Point(99.5, 99.5)
        ) < 0.01

    def test_duplicate_insert_raises(self, loaded):
        tree, _ = loaded
        with pytest.raises(ValueError, match="duplicate"):
            tree.insert_point(0, Point(1, 1))

    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            KDTree().delete("ghost")

    def test_non_point_rect_raises(self):
        with pytest.raises(ValueError, match="points"):
            KDTree().insert("a", Rect(0, 0, 1, 1))

    def test_explicit_rebuild_flushes_buffer(self):
        tree = KDTree(rebuild_fraction=1.0)
        for i in range(20):
            tree.insert_point(i, Point(float(i), 0.0))
        tree.rebuild()
        assert tree.buffered == 0
        assert sorted(tree.range_query(Rect(0, 0, 25, 1))) == list(range(20))

    def test_interleaved_workload_consistency(self, rng):
        tree = KDTree(rebuild_fraction=0.2)
        reference = {}
        next_id = 0
        for _ in range(800):
            op = rng.random()
            if op < 0.6 or not reference:
                p = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
                tree.insert_point(next_id, p)
                reference[next_id] = p
                next_id += 1
            elif op < 0.8:
                victim = list(reference)[int(rng.integers(len(reference)))]
                tree.delete(victim)
                del reference[victim]
            else:
                cx, cy = rng.uniform(0, 100, 2)
                window = Rect.from_center(Point(float(cx), float(cy)), 25, 25)
                assert sorted(tree.range_query(window)) == brute_range(
                    reference, window
                )
        assert len(tree) == len(reference)

    def test_nearest_sees_buffer_and_respects_tombstones(self, loaded, rng):
        tree, points = loaded
        q = Point(50, 50)
        true_first = tree.nearest(q, 1)[0]
        tree.delete(true_first)
        tree.insert_point("winner", Point(50.0001, 50.0001))
        assert tree.nearest(q, 1) == ["winner"]
