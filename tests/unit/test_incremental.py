"""Unit tests for incremental cloak evaluation (Section 5.3)."""

import pytest

from repro.cloaking.incremental import IncrementalCloaker
from repro.cloaking.mbr import MBRCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)
REQ = PrivacyRequirement(k=10)


@pytest.fixture
def incremental(uniform_points_500):
    inner = PyramidCloaker(BOUNDS, height=6)
    wrapper = IncrementalCloaker(inner)
    for i, p in enumerate(uniform_points_500):
        wrapper.add_user(i, p)
    return wrapper


class TestReuse:
    def test_second_cloak_reuses(self, incremental):
        first = incremental.cloak(0, REQ)
        second = incremental.cloak(0, REQ)
        assert not first.reused
        assert second.reused
        assert second.region == first.region

    def test_reuse_counted_in_stats(self, incremental):
        incremental.cloak(0, REQ)
        incremental.cloak(0, REQ)
        assert incremental.stats.reuses == 1

    def test_small_move_inside_region_reuses(self, incremental):
        first = incremental.cloak(0, REQ)
        center = first.region.center
        incremental.move_user(0, center)
        second = incremental.cloak(0, REQ)
        assert second.reused
        assert second.region == first.region

    def test_move_out_of_region_recomputes(self, incremental):
        first = incremental.cloak(0, REQ)
        outside_x = (first.region.max_x + 50.0) % 100.0
        outside_y = (first.region.max_y + 50.0) % 100.0
        incremental.move_user(0, Point(outside_x, outside_y))
        second = incremental.cloak(0, REQ)
        assert not second.reused
        assert second.region.contains_point(Point(outside_x, outside_y))

    def test_requirement_change_recomputes(self, incremental):
        incremental.cloak(0, REQ)
        second = incremental.cloak(0, PrivacyRequirement(k=11))
        assert not second.reused

    def test_population_drain_invalidates(self, incremental):
        first = incremental.cloak(0, REQ)
        # Remove everyone else inside the cached region.
        inside = [
            uid
            for uid in incremental.inner.users_in(first.region)
            if uid != 0
        ]
        for uid in inside:
            incremental.remove_user(uid)
        second = incremental.cloak(0, REQ)
        assert not second.reused
        assert second.user_count >= REQ.k

    def test_reused_result_still_k_valid(self, incremental):
        incremental.cloak(0, REQ)
        result = incremental.cloak(0, REQ)
        assert result.user_count >= REQ.k


class TestFreshnessBound:
    def test_max_reuses_forces_recompute(self, uniform_points_500):
        inner = PyramidCloaker(BOUNDS, height=6)
        wrapper = IncrementalCloaker(inner, max_reuses=2)
        for i, p in enumerate(uniform_points_500):
            wrapper.add_user(i, p)
        results = [wrapper.cloak(0, REQ) for _ in range(5)]
        assert [r.reused for r in results] == [False, True, True, False, True]

    def test_invalid_max_reuses(self):
        with pytest.raises(ValueError):
            IncrementalCloaker(PyramidCloaker(BOUNDS), max_reuses=-1)

    def test_zero_max_reuses_never_caches(self, uniform_points_500):
        inner = PyramidCloaker(BOUNDS, height=6)
        wrapper = IncrementalCloaker(inner, max_reuses=0)
        for i, p in enumerate(uniform_points_500):
            wrapper.add_user(i, p)
        assert not wrapper.cloak(0, REQ).reused
        assert not wrapper.cloak(0, REQ).reused


class TestLifecycle:
    def test_remove_user_clears_cache(self, incremental):
        incremental.cloak(0, REQ)
        incremental.remove_user(0)
        incremental.add_user(0, Point(1, 1))
        assert not incremental.cloak(0, REQ).reused

    def test_invalidate_single(self, incremental):
        incremental.cloak(0, REQ)
        incremental.invalidate(0)
        assert not incremental.cloak(0, REQ).reused

    def test_invalidate_all(self, incremental):
        incremental.cloak(0, REQ)
        incremental.cloak(1, REQ)
        incremental.invalidate()
        assert not incremental.cloak(0, REQ).reused
        assert not incremental.cloak(1, REQ).reused

    def test_name_and_bounds_forwarded(self, incremental):
        assert incremental.name == "incremental(pyramid)"
        assert incremental.bounds == BOUNDS
        assert incremental.user_count() == 500

    def test_wraps_data_dependent_cloaker(self, uniform_points_500):
        wrapper = IncrementalCloaker(MBRCloaker(BOUNDS))
        for i, p in enumerate(uniform_points_500):
            wrapper.add_user(i, p)
        first = wrapper.cloak(3, REQ)
        second = wrapper.cloak(3, REQ)
        assert not first.reused and second.reused
