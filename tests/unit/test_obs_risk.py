"""Unit tests for the online privacy-risk monitor (repro.obs.risk)."""

import math
import random

import pytest

from repro import (
    MobileUser,
    PrivacyProfile,
    PrivacySystem,
    PyramidCloaker,
    RangeSpec,
)
from repro.attacks.streaming import bucket_anonymity
from repro.geometry import Point, Rect
from repro.mobility.users import UserMode
from repro.obs.events import RISK_SCORED
from repro.obs.risk import RISK_SCHEMA, PrivacyRiskMonitor
from repro.obs.slo import SLOMonitor

BOUNDS = Rect(0, 0, 100, 100)


def build_system(users=40, pois=15, k=5, seed=0, monitor_first=True):
    system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=5))
    if monitor_first:
        system.enable_monitoring(interval=1e9)  # tap installed, no auto windows
    rng = random.Random(seed)
    for j in range(pois):
        system.add_poi(f"poi-{j}", Point(rng.uniform(0, 100), rng.uniform(0, 100)))
    for i in range(users):
        system.add_user(
            MobileUser(
                f"u{i}",
                Point(rng.uniform(0, 100), rng.uniform(0, 100)),
                PrivacyProfile.always(k=k),
            )
        )
    system.publish_all()
    return system


class TestStreamConsumption:
    def test_tracks_population_and_publications(self):
        system = build_system(users=30)
        monitor = system.risk
        assert monitor.density.population == 30
        assert monitor.posterior.population == 30
        assert monitor.events_consumed > 0

    def test_posterior_buckets_match_batch_oracle(self):
        system = build_system(users=30)
        regions = {
            str(uid): system.server.private.region_of(reg.pseudonym)
            for uid, reg in system.anonymizer._registrations.items()
        }
        oracle = bucket_anonymity(regions)
        for user, expected in oracle.items():
            assert system.risk.posterior.anonymity_of(user) == expected

    def test_retirement_removes_user_everywhere(self):
        system = build_system(users=20)
        monitor = system.risk
        system.set_mode("u0", UserMode.PASSIVE)
        assert monitor.density.population == 19
        assert monitor.posterior.anonymity_of("u0") is None

    def test_unknown_kinds_ignored_no_recursion(self):
        system = build_system(users=10)
        before = system.risk.events_consumed
        # risk.scored is emitted from inside the tap; it must not feed
        # back into the dispatch (that would recurse forever).
        system.risk.score()
        assert system.risk.events_consumed == before

    def test_k_attainment_from_cloak_results(self):
        system = build_system(users=40, k=5)
        for i in range(5):
            system.query(RangeSpec(flavor="private", user=f"u{i}", radius=8.0))
        score = system.risk.score(emit=False)
        assert score["k_attainment"] is not None
        assert score["k_attainment"] >= 1.0  # k=5 easily met at n=40
        assert score["k_attainment_entropy_bits"] >= math.log2(5)

    def test_learned_max_speed_from_user_added(self):
        monitor = PrivacyRiskMonitor(BOUNDS)
        assert monitor.max_speed == 0.0
        monitor.consume(
            type(
                "E",
                (),
                {"kind": "user.added", "attrs": {"user": "u", "x": 1, "y": 1, "speed": 3.5}},
            )()
        )
        assert monitor.max_speed == 3.5


class TestSeeding:
    def test_seed_from_matches_live_tap(self):
        live = build_system(users=30, monitor_first=True)
        late = build_system(users=30, monitor_first=False)
        late.enable_monitoring(interval=1e9)  # seeds from current state
        assert late.risk.density.population == live.risk.density.population
        assert late.risk.posterior.population == live.risk.posterior.population
        assert late.risk.posterior.bucket_count == live.risk.posterior.bucket_count
        for i in range(30):
            assert late.risk.posterior.anonymity_of(
                f"u{i}"
            ) == live.risk.posterior.anonymity_of(f"u{i}")


class TestScoring:
    def test_score_emits_event_and_gauges(self):
        system = build_system(users=30)
        score = system.risk.score()
        kinds = [e.kind for e in system.obs.events.events()]
        assert RISK_SCORED in kinds
        gauges = system.obs.snapshot()["gauges"]
        assert gauges["risk.reidentification"] == pytest.approx(
            score["reidentification"]
        )
        assert "risk.posterior_entropy_bits" in gauges

    def test_reidentification_bounds(self):
        system = build_system(users=30, k=5)
        score = system.risk.score(emit=False)
        assert 0.0 < score["reidentification"] <= 1.0
        # k=5 cloaking: mean bucket >= 1 user, so risk well below unique.
        assert score["reidentification"] < 1.0

    def test_report_schema(self):
        import json

        system = build_system(users=20)
        report = system.risk.report()
        assert report["schema"] == RISK_SCHEMA
        assert report["posterior"]["population"] == 20
        json.dumps(report)

    def test_render_smoke(self):
        system = build_system(users=20)
        text = system.risk.render()
        assert "privacy risk" in text
        assert "reidentification" in text


class TestSLOIntegration:
    def test_risk_slos_vacuous_without_monitoring(self):
        system = build_system(users=20, monitor_first=False)
        report = SLOMonitor().evaluate(system)
        by_name = {r.spec.name: r for r in report.results}
        assert by_name["reidentification_risk"].measured is None
        assert by_name["reidentification_risk"].ok  # vacuous pass

    def test_risk_slos_measured_after_score(self):
        system = build_system(users=30, k=5)
        score = system.risk.score()
        report = SLOMonitor().evaluate(system)
        by_name = {r.spec.name: r for r in report.results}
        assert by_name["reidentification_risk"].measured == pytest.approx(
            score["reidentification"]
        )
        assert by_name["reidentification_risk"].ok
        assert by_name["k_attainment_entropy"].measured is not None

    def test_disable_monitoring_detaches_tap(self):
        system = build_system(users=10)
        monitor = system.risk
        consumed = monitor.events_consumed
        system.disable_monitoring()
        assert system.risk is None and system.timeseries is None
        system.add_user(
            MobileUser("late", Point(1, 1), PrivacyProfile.always(k=2))
        )
        assert monitor.events_consumed == consumed
