"""Unit tests for private nearest-neighbour queries (Figure 5b)."""

import pytest

from repro.core.errors import QueryError
from repro.core.stores import PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.sampling import uniform_points
from repro.queries.private_nn import (
    exact_nn_answer,
    nn_probabilities,
    private_nn_query,
    pruning_radius,
    refine_nn_candidates,
)


@pytest.fixture
def store(uniform_points_500):
    s = PublicStore()
    for i, p in enumerate(uniform_points_500):
        s.add(i, p)
    return s


REGION = Rect(30, 55, 48, 70)


class TestPruningRadius:
    def test_bound_is_min_of_max_dists(self, store, uniform_points_500):
        from repro.geometry.distances import max_dist

        m, ids = pruning_radius(store, REGION)
        brute = min(max_dist(p, REGION) for p in uniform_points_500)
        assert m == pytest.approx(brute)
        assert len(ids) >= 1

    def test_all_ids_within_bound(self, store):
        from repro.geometry.distances import min_dist

        m, ids = pruning_radius(store, REGION)
        for i in ids:
            assert min_dist(store.point_of(i), REGION) <= m + 1e-12

    def test_empty_store_raises(self):
        with pytest.raises(QueryError):
            pruning_radius(PublicStore(), REGION)


class TestCandidateSets:
    def test_method_tightness_ordering(self, store):
        r_range = private_nn_query(store, REGION, "range")
        r_filter = private_nn_query(store, REGION, "filter")
        r_exact = private_nn_query(store, REGION, "exact")
        assert set(r_exact.candidates) <= set(r_filter.candidates)
        assert set(r_filter.candidates) <= set(r_range.candidates)
        assert len(r_exact.candidates) >= 1

    def test_corner_dominance_actually_prunes(self, store):
        """The filter must beat the plain radius bound on a typical city."""
        r_range = private_nn_query(store, REGION, "range")
        r_filter = private_nn_query(store, REGION, "filter")
        assert len(r_filter.candidates) < len(r_range.candidates)

    def test_figure_5b_style_dominance(self):
        """The paper's worked pruning: A loses to B and C everywhere in R."""
        store = PublicStore()
        region = Rect(40, 40, 50, 50)
        store.add("B", Point(45, 52))  # just above R
        store.add("C", Point(45, 38))  # just below R
        store.add("A", Point(45, 80))  # far above: B beats it everywhere
        store.add("D", Point(58, 45))  # right of R: may win on the right edge
        result = private_nn_query(store, region, "filter")
        assert "A" not in result.candidates
        assert {"B", "C", "D"} <= set(result.candidates)

    @pytest.mark.parametrize("method", ["range", "filter", "exact"])
    def test_no_false_negatives(self, store, rng, method):
        result = private_nn_query(store, REGION, method)
        for p in uniform_points(REGION, 400, rng):
            assert exact_nn_answer(store, p) in result.candidates

    def test_exact_set_has_no_false_positives(self, store, rng):
        """Every exact candidate must win somewhere in the region."""
        result = private_nn_query(store, REGION, "exact")
        winners = set()
        for p in uniform_points(REGION, 6000, rng):
            winners.add(exact_nn_answer(store, p))
        # Dense sampling should recover (nearly) all exact candidates; allow
        # candidates with tiny winning cells to be missed, but not many.
        assert len(winners - set(result.candidates)) == 0
        assert len(set(result.candidates) - winners) <= max(
            1, len(result.candidates) // 3
        )

    def test_objects_inside_region_are_candidates(self, store, uniform_points_500):
        inside = [
            i for i, p in enumerate(uniform_points_500) if REGION.contains_point(p)
        ]
        result = private_nn_query(store, REGION, "exact")
        # The paper: objects inside the cloaked region are always candidates.
        assert set(inside) <= set(result.candidates)

    def test_degenerate_region_single_candidate_methods_agree(self, store, uniform_points_500):
        region = Rect.from_point(uniform_points_500[3])
        for method in ("range", "filter", "exact"):
            result = private_nn_query(store, region, method)
            assert exact_nn_answer(store, uniform_points_500[3]) in result.candidates

    def test_single_object_store(self):
        store = PublicStore()
        store.add("only", Point(50, 50))
        result = private_nn_query(store, REGION, "exact")
        assert result.candidates == ("only",)

    def test_unknown_method_raises(self, store):
        with pytest.raises(QueryError):
            private_nn_query(store, REGION, "bogus")


class TestProbabilities:
    def test_sum_to_one(self, store):
        result = private_nn_query(store, REGION, "exact")
        probs = nn_probabilities(store, result)
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_nonnegative_and_supported(self, store):
        result = private_nn_query(store, REGION, "exact")
        probs = nn_probabilities(store, result)
        assert all(p >= 0 for p in probs.values())
        # Exact candidates should essentially all have positive mass.
        positive = sum(1 for p in probs.values() if p > 1e-9)
        assert positive >= len(result.candidates) - 1

    def test_match_monte_carlo(self, store, rng):
        result = private_nn_query(store, REGION, "exact")
        probs = nn_probabilities(store, result)
        counts = {i: 0 for i in result.candidates}
        n = 4000
        for p in uniform_points(REGION, n, rng):
            counts[exact_nn_answer(store, p)] += 1
        for i in result.candidates:
            assert counts[i] / n == pytest.approx(probs[i], abs=0.03)

    def test_degenerate_region(self, store, uniform_points_500):
        region = Rect.from_point(uniform_points_500[9])
        result = private_nn_query(store, region, "exact")
        probs = nn_probabilities(store, result)
        top = max(probs, key=probs.get)
        assert probs[top] == 1.0
        assert top == exact_nn_answer(store, uniform_points_500[9])


class TestRefinement:
    def test_refined_matches_truth(self, store, rng):
        result = private_nn_query(store, REGION, "filter")
        for p in uniform_points(REGION, 100, rng):
            assert refine_nn_candidates(store, result, p) == exact_nn_answer(store, p)

    def test_empty_candidates_raise(self, store):
        from repro.queries.private_nn import PrivateNNResult

        empty = PrivateNNResult(
            region=REGION, candidates=(), method="filter", pruning_radius=0.0
        )
        with pytest.raises(QueryError):
            refine_nn_candidates(store, empty, Point(0, 0))

    def test_exact_nn_answer_empty_store_raises(self):
        with pytest.raises(QueryError):
            exact_nn_answer(PublicStore(), Point(0, 0))
