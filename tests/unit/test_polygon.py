"""Unit tests for repro.geometry.polygon (half-plane clipping)."""

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import (
    bisector_halfplane,
    clip_by_halfplane,
    polygon_area,
    voronoi_cell_clip,
    voronoi_cell_intersects,
)
from repro.geometry.rect import Rect

SQUARE = [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)]


class TestClipByHalfplane:
    def test_no_clip_when_polygon_inside(self):
        # x <= 10 keeps the whole square.
        result = clip_by_halfplane(SQUARE, 1, 0, 10)
        assert polygon_area(result) == pytest.approx(16.0)

    def test_full_clip_when_polygon_outside(self):
        # x <= -1 removes everything.
        assert clip_by_halfplane(SQUARE, 1, 0, -1) == []

    def test_half_clip(self):
        # x <= 2 keeps the left half.
        result = clip_by_halfplane(SQUARE, 1, 0, 2)
        assert polygon_area(result) == pytest.approx(8.0)

    def test_diagonal_clip(self):
        # x + y <= 4 keeps the lower-left triangle.
        result = clip_by_halfplane(SQUARE, 1, 1, 4)
        assert polygon_area(result) == pytest.approx(8.0)

    def test_empty_input(self):
        assert clip_by_halfplane([], 1, 0, 0) == []

    def test_successive_clips_compose(self):
        result = clip_by_halfplane(SQUARE, 1, 0, 2)
        result = clip_by_halfplane(result, 0, 1, 2)
        assert polygon_area(result) == pytest.approx(4.0)


class TestBisector:
    def test_halfplane_prefers_nearer_point(self):
        o, other = Point(0, 0), Point(4, 0)
        a, b, c = bisector_halfplane(o, other)
        # Points with x < 2 are closer to o.
        assert a * 1 + b * 0 <= c  # (1, 0) closer to o
        assert a * 3 + b * 0 > c  # (3, 0) closer to other

    def test_bisector_line_is_equidistant(self):
        o, other = Point(1, 1), Point(5, 3)
        a, b, c = bisector_halfplane(o, other)
        mid = o.midpoint(other)
        assert a * mid.x + b * mid.y == pytest.approx(c)


class TestVoronoiCell:
    def test_single_object_cell_covers_region(self):
        region = Rect(0, 0, 10, 10)
        cell = voronoi_cell_clip(Point(5, 5), [], region)
        assert polygon_area(cell) == pytest.approx(100.0)

    def test_two_objects_split_region(self):
        region = Rect(0, 0, 10, 10)
        left = voronoi_cell_clip(Point(0, 5), [Point(10, 5)], region)
        right = voronoi_cell_clip(Point(10, 5), [Point(0, 5)], region)
        assert polygon_area(left) == pytest.approx(50.0)
        assert polygon_area(right) == pytest.approx(50.0)

    def test_dominated_object_has_empty_cell(self):
        region = Rect(0, 0, 2, 2)
        # The far object loses everywhere in the region to the near one.
        assert not voronoi_cell_intersects(
            Point(50, 50), [Point(1, 1)], region
        )

    def test_object_inside_region_always_intersects(self):
        region = Rect(0, 0, 10, 10)
        competitors = [Point(20, 20), Point(-5, -5)]
        assert voronoi_cell_intersects(Point(5, 5), competitors, region)

    def test_competitor_equal_to_object_ignored(self):
        region = Rect(0, 0, 2, 2)
        o = Point(1, 1)
        assert voronoi_cell_intersects(o, [o, Point(50, 50)], region)

    def test_cell_areas_partition_region(self):
        region = Rect(0, 0, 6, 6)
        objects = [Point(1, 1), Point(5, 1), Point(3, 5), Point(9, 9)]
        total = 0.0
        for o in objects:
            competitors = [q for q in objects if q != o]
            total += polygon_area(voronoi_cell_clip(o, competitors, region))
        assert total == pytest.approx(region.area, rel=1e-9)

    def test_degenerate_region(self):
        region = Rect.from_point(Point(3, 3))
        near, far = Point(3, 4), Point(30, 30)
        assert voronoi_cell_intersects(near, [far], region)
        assert not voronoi_cell_intersects(far, [near], region)


class TestPolygonArea:
    def test_triangle(self):
        assert polygon_area([Point(0, 0), Point(4, 0), Point(0, 3)]) == pytest.approx(6.0)

    def test_orientation_invariant(self):
        cw = [Point(0, 0), Point(0, 3), Point(4, 0)]
        ccw = list(reversed(cw))
        assert polygon_area(cw) == polygon_area(ccw)

    def test_fewer_than_three_vertices_is_zero(self):
        assert polygon_area([]) == 0.0
        assert polygon_area([Point(1, 1)]) == 0.0
        assert polygon_area([Point(1, 1), Point(2, 2)]) == 0.0
