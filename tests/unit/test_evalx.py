"""Unit tests for the evaluation harness (tables, metrics, workloads)."""

import numpy as np
import pytest

from repro.cloaking.base import CloakResult
from repro.cloaking.mbr import MBRCloaker
from repro.core.profiles import PrivacyRequirement
from repro.evalx.metrics import (
    count_answer_error,
    geometric_mean,
    mean_and_p95,
    normalized_count_error,
    relative_area,
    smallest_k_area,
)
from repro.evalx.tables import Table
from repro.evalx.workloads import (
    DEFAULT_BOUNDS,
    build_workload,
    cloaked_private_store,
    loaded_cloaker,
    poi_store,
    query_windows,
    sample_victims,
    standard_cloakers,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class TestTable:
    def test_add_row_and_render(self):
        table = Table("demo", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", True)
        text = table.to_text()
        assert "demo" in text
        assert "2.5000" in text
        assert "yes" in text
        assert len(table) == 2

    def test_wrong_arity_raises(self):
        table = Table("demo", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError):
            Table("demo", [])

    def test_column_access(self):
        table = Table("demo", ["k", "v"])
        table.add_row(1, 10)
        table.add_row(2, 20)
        assert table.column("v") == ["10", "20"]
        with pytest.raises(KeyError):
            table.column("missing")

    def test_markdown_render(self):
        table = Table("demo", ["a"])
        table.add_row(5)
        md = table.to_markdown()
        assert "| a |" in md
        assert "| 5 |" in md

    def test_large_number_formatting(self):
        table = Table("demo", ["n"])
        table.add_row(1234567.89)
        assert "1,234,567.9" in table.to_text()


class TestMetrics:
    def test_mean_and_p95(self):
        mean, p95 = mean_and_p95(list(range(101)))
        assert mean == pytest.approx(50.0)
        assert p95 == pytest.approx(95.0)

    def test_mean_and_p95_empty_raises(self):
        with pytest.raises(ValueError):
            mean_and_p95([])

    def test_count_errors(self):
        assert count_answer_error(2.7, 3) == pytest.approx(0.3)
        assert normalized_count_error(5.0, 10) == pytest.approx(0.5)
        assert normalized_count_error(1.0, 0) == pytest.approx(1.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_relative_area(self):
        result = CloakResult(
            region=Rect(0, 0, 4, 4), user_count=5, requirement=PrivacyRequirement(k=5)
        )
        assert relative_area(result, 8.0) == pytest.approx(2.0)
        assert relative_area(result, 0.0) > 1e9  # floored reference

    def test_smallest_k_area_matches_mbr_cloaker(self, uniform_points_500):
        workload = build_workload(n_users=200, seed=3)
        cloaker = loaded_cloaker(MBRCloaker, workload)
        point = workload.users[0]
        reference = smallest_k_area(cloaker, point, 10)
        mbr_region = cloaker.cloak(0, PrivacyRequirement(k=10)).region
        assert reference == pytest.approx(mbr_region.area)


class TestWorkloads:
    def test_build_workload_deterministic(self):
        a = build_workload(n_users=50, n_pois=10, seed=9)
        b = build_workload(n_users=50, n_pois=10, seed=9)
        assert a.users == b.users
        assert a.pois == b.pois

    def test_distributions(self):
        for dist in ("uniform", "clustered", "hotspot"):
            workload = build_workload(n_users=100, distribution=dist, seed=1)
            assert len(workload.users) == 100
            assert all(DEFAULT_BOUNDS.contains_point(p) for p in workload.users)

    def test_unknown_distribution_raises(self):
        with pytest.raises(ValueError):
            build_workload(distribution="weird")

    def test_standard_cloakers_all_loaded(self):
        workload = build_workload(n_users=60, seed=2)
        cloakers = standard_cloakers(workload)
        assert len(cloakers) == 6
        names = {c.name for c in cloakers}
        assert names == {"naive", "mbr", "quadtree", "grid", "pyramid", "hilbert"}
        assert all(c.user_count() == 60 for c in cloakers)

    def test_poi_store(self):
        workload = build_workload(n_users=10, n_pois=25, seed=2)
        store = poi_store(workload)
        assert len(store) == 25

    def test_cloaked_private_store(self):
        workload = build_workload(n_users=120, seed=2)
        from repro.cloaking.pyramid_cloak import PyramidCloaker

        cloaker = loaded_cloaker(PyramidCloaker, workload, height=5)
        store = cloaked_private_store(cloaker, k=8)
        assert len(store) == 120
        for i, point in enumerate(workload.users):
            assert store.region_of(i).contains_point(point)

    def test_sample_victims(self):
        workload = build_workload(n_users=30, seed=2)
        rng = np.random.default_rng(0)
        victims = sample_victims(workload, 10, rng)
        assert len(victims) == 10
        assert len(set(victims)) == 10
        assert sample_victims(workload, 100, rng) == list(range(30))

    def test_query_windows(self):
        rng = np.random.default_rng(0)
        windows = query_windows(DEFAULT_BOUNDS, 5, 0.2, rng)
        assert len(windows) == 5
        for w in windows:
            assert DEFAULT_BOUNDS.contains_rect(w)
            assert w.width == pytest.approx(20.0)
