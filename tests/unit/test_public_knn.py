"""Unit tests for public k-NN queries over private data."""

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.core.stores import PrivateStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.queries.public_knn import (
    exact_knn_users,
    knn_candidate_users,
    public_knn_query,
)

Q = Point(50, 50)


def make_store(regions):
    store = PrivateStore()
    for object_id, region in regions.items():
        store.set_region(object_id, region)
    return store


class TestCandidates:
    def test_certain_k_prunes_everyone_else(self):
        store = make_store(
            {
                "a": Rect(49, 49, 51, 51),
                "b": Rect(48, 48, 52, 52),
                "far": Rect(90, 90, 95, 95),
            }
        )
        candidates, _ = knn_candidate_users(store, Q, 2)
        assert set(candidates) == {"a", "b"}

    def test_bound_is_kth_worst_case(self):
        from repro.geometry.distances import max_dist

        regions = {
            i: Rect.from_center(Point(50 + 5 * i, 50), 4, 4) for i in range(5)
        }
        store = make_store(regions)
        _, bound = knn_candidate_users(store, Q, 3)
        worst = sorted(max_dist(Q, r) for r in regions.values())
        assert bound == pytest.approx(worst[2])

    def test_k_capped_at_store_size(self):
        store = make_store({"a": Rect(0, 0, 1, 1)})
        candidates, _ = knn_candidate_users(store, Q, 10)
        assert candidates == ["a"]

    def test_invalid_inputs(self):
        with pytest.raises(QueryError):
            knn_candidate_users(PrivateStore(), Q, 1)
        store = make_store({"a": Rect(0, 0, 1, 1)})
        with pytest.raises(QueryError):
            knn_candidate_users(store, Q, 0)
        with pytest.raises(QueryError):
            public_knn_query(store, Q, 1, samples=0)


class TestGroundTruthContainment:
    def test_true_knn_always_candidates(self, rng):
        for trial in range(8):
            regions = {}
            exact = {}
            for i in range(30):
                cx, cy = rng.uniform(10, 90, 2)
                w, h = rng.uniform(0.5, 14, 2)
                region = Rect.from_center(Point(float(cx), float(cy)), float(w), float(h))
                regions[i] = region
                exact[i] = Point(
                    float(rng.uniform(region.min_x, region.max_x)),
                    float(rng.uniform(region.min_y, region.max_y)),
                )
            store = make_store(regions)
            for k in (1, 3, 7):
                candidates, _ = knn_candidate_users(store, Q, k)
                truth = exact_knn_users(exact, Q, k)
                assert set(truth) <= set(candidates), (trial, k)


class TestProbabilities:
    def test_probabilities_sum_to_k(self, rng):
        store = make_store(
            {i: Rect.from_center(Point(44 + 3 * i, 50), 10, 10) for i in range(6)}
        )
        for k in (1, 2, 4):
            result = public_knn_query(store, Q, k, samples=3000, rng=rng)
            assert sum(result.probabilities.values()) == pytest.approx(k, abs=1e-9)

    def test_exact_candidates_skip_sampling(self):
        store = make_store(
            {
                "a": Rect(49, 49, 51, 51),
                "b": Rect(48, 48, 52, 52),
                "far": Rect(90, 90, 95, 95),
            }
        )
        result = public_knn_query(store, Q, 2)
        assert result.samples == 0
        assert result.probabilities == {"a": 1.0, "b": 1.0}
        assert result.certain_members == {"a", "b"}

    def test_nearer_regions_more_probable(self, rng):
        store = make_store(
            {
                "near": Rect(48, 48, 54, 54),
                "mid": Rect(53, 50, 61, 58),
                "far": Rect(56, 54, 68, 64),
            }
        )
        result = public_knn_query(store, Q, 2, samples=8000, rng=rng)
        probs = result.probabilities
        assert len(result.candidates) == 3  # pruning alone cannot decide
        assert probs["near"] > probs["mid"] > probs["far"]

    def test_top_returns_k_items(self, rng):
        store = make_store(
            {i: Rect.from_center(Point(45 + 2 * i, 50), 8, 8) for i in range(7)}
        )
        result = public_knn_query(store, Q, 3, samples=1000, rng=rng)
        assert len(result.top()) == 3
        assert 0.0 < result.expected_overlap <= 3.0

    def test_matches_one_nn_case(self, rng):
        from repro.queries.public_nn import public_nn_query

        regions = {
            "a": Rect(45, 45, 55, 55),
            "b": Rect(50, 50, 60, 60),
            "c": Rect(20, 20, 30, 30),
        }
        store = make_store(regions)
        knn = public_knn_query(store, Q, 1, samples=30000, rng=np.random.default_rng(5))
        nn = public_nn_query(store, Q, samples=30000, rng=np.random.default_rng(6))
        for object_id in regions:
            assert knn.probabilities.get(object_id, 0.0) == pytest.approx(
                nn.answer.probabilities.get(object_id, 0.0), abs=0.02
            )


class TestExactKnnUsers:
    def test_ranks_by_distance(self):
        exact = {"a": Point(51, 50), "b": Point(60, 50), "c": Point(49, 50)}
        assert exact_knn_users(exact, Q, 2) == ["a", "c"] or exact_knn_users(
            exact, Q, 2
        ) == ["c", "a"]

    def test_empty_raises(self):
        with pytest.raises(QueryError):
            exact_knn_users({}, Q, 1)
