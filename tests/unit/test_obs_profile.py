"""Hot-span self-time profiler (repro.obs.profile)."""

import json

from repro.obs import SpanProfiler, Telemetry
from repro.obs.events import PROFILE_SAMPLED
from repro.obs.profile import PROFILE_SCHEMA


def run_nested_workload(obs):
    """parent wraps child; sibling stands alone."""
    with obs.span("parent"):
        with obs.span("child"):
            pass
    with obs.span("sibling"):
        pass


class TestSelfTime:
    def test_parent_self_time_excludes_children(self):
        obs = Telemetry()
        with obs.profiled() as profiler:
            run_nested_workload(obs)
        rows = {row["path"]: row for row in profiler.rows()}
        parent = rows["parent"]
        child = rows["parent/child"]
        assert child["self_ms"] == child["total_ms"]
        assert parent["self_ms"] <= parent["total_ms"] - child["total_ms"] + 1e-6
        assert parent["self_ms"] >= 0.0

    def test_sibling_child_time_does_not_leak(self):
        # Two consecutive children: the parent's self-time subtracts both,
        # and the *next* parent starts from a clean accumulator.
        obs = Telemetry()
        with obs.profiled() as profiler:
            with obs.span("a"):
                with obs.span("x"):
                    pass
                with obs.span("y"):
                    pass
            with obs.span("b"):
                pass
        rows = {row["path"]: row for row in profiler.rows()}
        assert rows["b"]["self_ms"] == rows["b"]["total_ms"]

    def test_counts_per_path(self):
        obs = Telemetry()
        with obs.profiled() as profiler:
            for _ in range(3):
                run_nested_workload(obs)
        rows = {row["path"]: row for row in profiler.rows()}
        assert rows["parent"]["count"] == 3
        assert rows["parent/child"]["count"] == 3
        assert profiler.spans_seen == 9

    def test_uninstall_stops_collection(self):
        obs = Telemetry()
        with obs.profiled() as profiler:
            pass
        run_nested_workload(obs)
        assert profiler.spans_seen == 0
        assert obs.tracer.profiler is None


class TestSampling:
    def test_sample_every_scales_counts_back_up(self):
        obs = Telemetry()
        with obs.profiled(sample_every=2) as profiler:
            for _ in range(10):
                with obs.span("hot"):
                    pass
        row = profiler.rows()[0]
        assert profiler.spans_seen == 10
        assert row["count"] == 10, "sampled counts are scaled by sample_every"

    def test_sample_every_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            SpanProfiler(sample_every=0)


class TestReports:
    def test_rows_sorted_by_self_time_and_topped(self):
        obs = Telemetry()
        with obs.profiled() as profiler:
            run_nested_workload(obs)
        rows = profiler.rows(top=2)
        assert len(rows) == 2
        assert rows[0]["self_ms"] >= rows[1]["self_ms"]

    def test_flamegraph_mirrors_call_structure(self):
        obs = Telemetry()
        with obs.profiled() as profiler:
            run_nested_workload(obs)
        flame = profiler.flamegraph()
        assert flame["name"] == "all"
        children = {node["name"]: node for node in flame["children"]}
        assert set(children) == {"parent", "sibling"}
        grandchildren = [n["name"] for n in children["parent"]["children"]]
        assert grandchildren == ["child"]

    def test_report_envelope_and_emitted_event(self):
        obs = Telemetry()
        with obs.profiled() as profiler:
            run_nested_workload(obs)
        report = profiler.report()
        assert report["schema"] == PROFILE_SCHEMA
        assert report["spans_seen"] == 3
        assert json.loads(json.dumps(report)) == report
        sampled = list(obs.events.events(PROFILE_SAMPLED))
        assert len(sampled) == 1
        assert sampled[0].attrs["spans"] == 3
        assert sampled[0].attrs["hottest"] in ("parent", "parent/child", "sibling")

    def test_render_lists_paths_with_bars(self):
        obs = Telemetry()
        with obs.profiled() as profiler:
            run_nested_workload(obs)
        text = profiler.render()
        assert "== hot spans (self time) ==" in text
        assert "parent/child" in text
        assert "#" in text

    def test_render_empty_profile(self):
        assert "(no spans recorded)" in SpanProfiler().render()

    def test_reset_clears_aggregation(self):
        obs = Telemetry()
        with obs.profiled() as profiler:
            run_nested_workload(obs)
        profiler.reset()
        assert profiler.spans_seen == 0
        assert profiler.rows() == []
