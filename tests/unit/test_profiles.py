"""Unit tests for privacy profiles (Section 4 / Figure 2)."""

import pytest

from repro.core.errors import ProfileError
from repro.core.profiles import (
    NO_PRIVACY,
    PrivacyProfile,
    PrivacyRequirement,
    ProfileEntry,
    example_profile,
    hhmm,
    time_of_day,
)


class TestHhmm:
    def test_parses(self):
        assert hhmm("00:00") == 0.0
        assert hhmm("08:30") == 8 * 3600 + 30 * 60
        assert hhmm("23:59") == 23 * 3600 + 59 * 60

    @pytest.mark.parametrize("bad", ["24:00", "12:60", "noon", "1230", "-1:00"])
    def test_rejects(self, bad):
        with pytest.raises(ProfileError):
            hhmm(bad)


class TestTimeOfDay:
    def test_wraps_days(self):
        assert time_of_day(86_400.0 + 3600.0) == 3600.0

    def test_identity_within_day(self):
        assert time_of_day(12345.0) == 12345.0


class TestPrivacyRequirement:
    def test_defaults_are_no_privacy(self):
        r = PrivacyRequirement()
        assert r.k == 1 and r.min_area == 0.0 and r.max_area is None
        assert not r.wants_privacy

    def test_validation(self):
        with pytest.raises(ProfileError):
            PrivacyRequirement(k=0)
        with pytest.raises(ProfileError):
            PrivacyRequirement(min_area=-1)
        with pytest.raises(ProfileError):
            PrivacyRequirement(max_area=0)

    def test_contradictory_allowed_but_flagged(self):
        r = PrivacyRequirement(k=5, min_area=10, max_area=2)
        assert r.is_contradictory
        assert not PrivacyRequirement(k=5, min_area=1, max_area=2).is_contradictory

    def test_wants_privacy(self):
        assert PrivacyRequirement(k=2).wants_privacy
        assert PrivacyRequirement(min_area=0.5).wants_privacy
        assert not PrivacyRequirement(k=1).wants_privacy

    def test_area_satisfied(self):
        r = PrivacyRequirement(k=1, min_area=2.0, max_area=5.0)
        assert not r.area_satisfied(1.0)
        assert r.area_satisfied(2.0)
        assert r.area_satisfied(5.0)
        assert not r.area_satisfied(5.1)

    def test_area_satisfied_unbounded_max(self):
        assert PrivacyRequirement(min_area=1.0).area_satisfied(1e12)

    def test_restrictiveness_ordering(self):
        lax = PrivacyRequirement(k=1)
        mid = PrivacyRequirement(k=100, min_area=1, max_area=3)
        strict = PrivacyRequirement(k=1000, min_area=5)
        assert lax.restrictiveness() < mid.restrictiveness() < strict.restrictiveness()


class TestProfileEntry:
    def test_start_out_of_range_raises(self):
        with pytest.raises(ProfileError):
            ProfileEntry(-1.0, NO_PRIVACY)
        with pytest.raises(ProfileError):
            ProfileEntry(86_400.0, NO_PRIVACY)


class TestPrivacyProfile:
    def test_empty_profile_is_no_privacy(self):
        profile = PrivacyProfile()
        assert profile.requirement_at(hhmm("13:00")) == NO_PRIVACY
        assert not profile.wants_privacy_at(0.0)

    def test_always(self):
        profile = PrivacyProfile.always(k=7, min_area=2.0)
        for t in (0.0, 50_000.0, 86_399.0):
            assert profile.requirement_at(t).k == 7

    def test_duplicate_starts_rejected(self):
        with pytest.raises(ProfileError, match="distinct"):
            PrivacyProfile(
                [ProfileEntry(0.0, NO_PRIVACY), ProfileEntry(0.0, NO_PRIVACY)]
            )

    def test_figure2_daytime(self):
        profile = example_profile()
        assert profile.requirement_at(hhmm("08:00")).k == 1
        assert profile.requirement_at(hhmm("12:00")).k == 1
        assert not profile.wants_privacy_at(hhmm("12:00"))

    def test_figure2_evening(self):
        req = example_profile().requirement_at(hhmm("18:30"))
        assert req.k == 100
        assert req.min_area == 1.0
        assert req.max_area == 3.0

    def test_figure2_night_wraps_past_midnight(self):
        profile = example_profile()
        for label in ("22:00", "23:59", "00:00", "03:00", "07:59"):
            req = profile.requirement_at(hhmm(label))
            assert req.k == 1000, label
            assert req.min_area == 5.0

    def test_requirement_at_uses_absolute_timestamps(self):
        profile = example_profile()
        noon_day_3 = 3 * 86_400.0 + hhmm("12:00")
        assert profile.requirement_at(noon_day_3).k == 1

    def test_max_k(self):
        assert example_profile().max_k() == 1000
        assert PrivacyProfile().max_k() == 1

    def test_with_entry_replaces_same_start(self):
        profile = example_profile().with_entry(
            ProfileEntry(hhmm("17:00"), PrivacyRequirement(k=9))
        )
        assert profile.requirement_at(hhmm("18:00")).k == 9
        assert len(profile.entries) == 3

    def test_with_entry_adds_new_interval(self):
        profile = example_profile().with_entry(
            ProfileEntry(hhmm("20:00"), PrivacyRequirement(k=500))
        )
        assert profile.requirement_at(hhmm("19:00")).k == 100
        assert profile.requirement_at(hhmm("21:00")).k == 500
        assert profile.requirement_at(hhmm("22:30")).k == 1000

    def test_without_entry(self):
        profile = example_profile().without_entry(hhmm("17:00"))
        # 18:00 now falls back to the 8:00 entry.
        assert profile.requirement_at(hhmm("18:00")).k == 1

    def test_without_missing_entry_raises(self):
        with pytest.raises(ProfileError):
            example_profile().without_entry(123.0)

    def test_scaled_k(self):
        profile = example_profile().scaled_k(2.0)
        assert profile.requirement_at(hhmm("18:00")).k == 200
        assert profile.requirement_at(hhmm("12:00")).k == 2

    def test_scaled_k_floors_at_one(self):
        profile = example_profile().scaled_k(0.001)
        assert profile.requirement_at(hhmm("12:00")).k == 1

    def test_scaled_k_invalid(self):
        with pytest.raises(ProfileError):
            example_profile().scaled_k(0.0)

    def test_equality(self):
        assert example_profile() == example_profile()
        assert PrivacyProfile() != example_profile()

    def test_from_schedule(self):
        profile = PrivacyProfile.from_schedule(
            [("09:00", PrivacyRequirement(k=3)), ("21:00", PrivacyRequirement(k=30))]
        )
        assert profile.requirement_at(hhmm("10:00")).k == 3
        assert profile.requirement_at(hhmm("22:00")).k == 30
        assert profile.requirement_at(hhmm("01:00")).k == 30  # wraps
