"""Unit tests for repro.geometry.distances."""

import math

import pytest

from repro.geometry.distances import (
    max_dist,
    max_dist_rects,
    min_dist,
    min_dist_rects,
    min_max_dist_rect,
    rounded_rect_area,
    within_distance_of_rect,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect

R = Rect(0, 0, 4, 2)


class TestPointRectDistances:
    def test_min_dist_inside_is_zero(self):
        assert min_dist(Point(2, 1), R) == 0.0

    def test_min_dist_on_edge_is_zero(self):
        assert min_dist(Point(0, 1), R) == 0.0

    def test_min_dist_axis_aligned(self):
        assert min_dist(Point(6, 1), R) == 2.0
        assert min_dist(Point(2, -3), R) == 3.0

    def test_min_dist_diagonal(self):
        assert min_dist(Point(7, 6), R) == pytest.approx(5.0)  # 3-4-5 to corner (4,2)

    def test_max_dist_from_center(self):
        # Farthest corner of R from (2,1) is any corner, distance sqrt(5).
        assert max_dist(Point(2, 1), R) == pytest.approx(math.sqrt(5))

    def test_max_dist_outside(self):
        assert max_dist(Point(5, 3), R) == pytest.approx(math.hypot(5, 3))

    def test_min_le_max_everywhere(self):
        for p in [Point(0, 0), Point(10, 10), Point(-3, 1), Point(2, 1)]:
            assert min_dist(p, R) <= max_dist(p, R)

    def test_degenerate_rect_both_equal_point_distance(self):
        deg = Rect.from_point(Point(1, 1))
        p = Point(4, 5)
        assert min_dist(p, deg) == max_dist(p, deg) == 5.0


class TestRectRectDistances:
    def test_min_dist_overlapping_is_zero(self):
        assert min_dist_rects(R, Rect(3, 1, 6, 5)) == 0.0

    def test_min_dist_separated_diagonally(self):
        assert min_dist_rects(R, Rect(7, 6, 9, 9)) == pytest.approx(5.0)

    def test_min_dist_symmetric(self):
        a, b = Rect(0, 0, 1, 1), Rect(5, 2, 6, 4)
        assert min_dist_rects(a, b) == min_dist_rects(b, a)

    def test_max_dist_rects(self):
        a, b = Rect(0, 0, 1, 1), Rect(2, 0, 3, 1)
        assert max_dist_rects(a, b) == pytest.approx(math.hypot(3, 1))

    def test_max_dist_of_identical_rect_is_diagonal(self):
        assert max_dist_rects(R, R) == pytest.approx(math.hypot(4, 2))

    def test_min_max_dist_rect_identical_regions(self):
        # From the worst corner of R, the closest point of R is itself: 0.
        assert min_max_dist_rect(R, R) == 0.0

    def test_min_max_dist_rect_disjoint(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(10, 0, 12, 2)
        # Worst point of a is its left edge; distance to b is 10 - x.
        assert min_max_dist_rect(a, b) == pytest.approx(10.0)

    def test_min_max_between_min_and_max(self):
        a, b = Rect(0, 0, 3, 3), Rect(5, 5, 9, 9)
        assert (
            min_dist_rects(a, b)
            <= min_max_dist_rect(a, b)
            <= max_dist_rects(a, b)
        )


class TestRoundedRect:
    def test_within_distance_inside(self):
        assert within_distance_of_rect(Point(1, 1), R, 0.0)

    def test_within_distance_near_edge(self):
        assert within_distance_of_rect(Point(5, 1), R, 1.0)
        assert not within_distance_of_rect(Point(5.01, 1), R, 1.0)

    def test_corner_rounding_excludes_mbr_corner(self):
        # Point at the corner of the MBR expansion but outside the disc.
        d = 1.0
        corner_point = Point(4 + d * 0.9, 2 + d * 0.9)
        assert R.expanded(d).contains_point(corner_point)
        assert not within_distance_of_rect(corner_point, R, d)

    def test_rounded_rect_area_formula(self):
        d = 2.0
        expected = R.area + R.perimeter * d + math.pi * d * d
        assert rounded_rect_area(R, d) == pytest.approx(expected)

    def test_rounded_area_less_than_mbr_area(self):
        d = 3.0
        assert rounded_rect_area(R, d) < R.expanded(d).area

    def test_rounded_rect_area_zero_distance(self):
        assert rounded_rect_area(R, 0.0) == R.area

    def test_negative_distance_raises(self):
        with pytest.raises(ValueError):
            rounded_rect_area(R, -1.0)
