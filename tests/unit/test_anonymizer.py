"""Unit tests for the LocationAnonymizer (the trusted third party)."""

import pytest

from repro.cloaking.incremental import IncrementalCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.anonymizer import LocationAnonymizer
from repro.core.errors import RegistrationError
from repro.core.profiles import PrivacyProfile, example_profile, hhmm
from repro.core.server import LocationServer
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)


@pytest.fixture
def anonymizer(uniform_points_500):
    cloaker = PyramidCloaker(BOUNDS, height=6)
    server = LocationServer()
    anonymizer = LocationAnonymizer(cloaker, server)
    for i, p in enumerate(uniform_points_500):
        anonymizer.register(i, PrivacyProfile.always(k=10), p)
    return anonymizer


class TestRegistration:
    def test_register_returns_pseudonym(self, anonymizer):
        pseudonym = anonymizer.register("new", PrivacyProfile.always(k=2), Point(5, 5))
        assert pseudonym.startswith("anon-")
        assert anonymizer.pseudonym_of("new") == pseudonym

    def test_pseudonyms_unique(self, anonymizer):
        pseudonyms = {anonymizer.pseudonym_of(i) for i in range(500)}
        assert len(pseudonyms) == 500

    def test_duplicate_registration_raises(self, anonymizer):
        with pytest.raises(RegistrationError):
            anonymizer.register(0, PrivacyProfile(), Point(1, 1))

    def test_unregister_removes_everywhere(self, anonymizer):
        anonymizer.publish(0, t=0.0)
        pseudonym = anonymizer.pseudonym_of(0)
        anonymizer.unregister(0)
        assert 0 not in anonymizer.registered_users()
        assert pseudonym not in anonymizer.server.private

    def test_unregister_unknown_raises(self, anonymizer):
        with pytest.raises(RegistrationError):
            anonymizer.unregister("ghost")

    def test_update_location_unknown_raises(self, anonymizer):
        with pytest.raises(RegistrationError):
            anonymizer.update_location("ghost", Point(1, 1))


class TestProfiles:
    def test_requirement_follows_temporal_profile(self, uniform_points_500):
        anonymizer = LocationAnonymizer(PyramidCloaker(BOUNDS, height=6))
        for i, p in enumerate(uniform_points_500):
            anonymizer.register(i, example_profile(), p)
        assert anonymizer.requirement_for(0, hhmm("12:00")).k == 1
        assert anonymizer.requirement_for(0, hhmm("18:00")).k == 100

    def test_update_profile(self, anonymizer):
        anonymizer.update_profile(0, PrivacyProfile.always(k=42))
        assert anonymizer.requirement_for(0, 0.0).k == 42


class TestCloaking:
    def test_cloak_respects_profile(self, anonymizer):
        result = anonymizer.cloak_user(0, t=0.0)
        assert result.user_count >= 10

    def test_oversized_k_clamped_best_effort(self, anonymizer):
        """k beyond the population yields the densest possible region and
        an honestly-unsatisfied result, not an exception."""
        anonymizer.update_profile(0, PrivacyProfile.always(k=10_000))
        result = anonymizer.cloak_user(0, t=0.0)
        assert result.requirement.k == 10_000
        assert result.user_count == 500  # everyone subscribed
        assert not result.k_satisfied

    def test_no_privacy_yields_exact_point(self, anonymizer, uniform_points_500):
        anonymizer.update_profile(0, PrivacyProfile.always(k=1))
        result = anonymizer.cloak_user(0, t=0.0)
        assert result.region == Rect.from_point(uniform_points_500[0])
        assert result.region.area == 0.0

    def test_temporal_switch_between_cloaked_and_exact(self, uniform_points_500):
        anonymizer = LocationAnonymizer(PyramidCloaker(BOUNDS, height=6))
        for i, p in enumerate(uniform_points_500):
            anonymizer.register(i, example_profile(), p)
        daytime = anonymizer.cloak_user(0, hhmm("12:00"))
        evening = anonymizer.cloak_user(0, hhmm("18:00"))
        assert daytime.region.area == 0.0
        assert evening.region.area > 0.0
        assert evening.user_count >= 100


class TestPublication:
    def test_publish_pushes_region(self, anonymizer):
        result = anonymizer.publish(3, t=0.0)
        pseudonym = anonymizer.pseudonym_of(3)
        assert anonymizer.server.private.region_of(pseudonym) == result.region

    def test_publish_all(self, anonymizer):
        results = anonymizer.publish_all(t=0.0)
        assert len(results) == 500
        assert len(anonymizer.server.private) == 500

    def test_publish_all_shared_matches_per_user(self, uniform_points_500):
        """Shared batch publication produces exactly the per-user regions."""
        shared_server = LocationServer()
        solo_server = LocationServer()
        shared_anonymizer = LocationAnonymizer(
            PyramidCloaker(BOUNDS, height=6), shared_server
        )
        solo_anonymizer = LocationAnonymizer(
            PyramidCloaker(BOUNDS, height=6), solo_server
        )
        for i, p in enumerate(uniform_points_500):
            shared_anonymizer.register(i, PrivacyProfile.always(k=10), p)
            solo_anonymizer.register(i, PrivacyProfile.always(k=10), p)
        shared_anonymizer.publish_all(t=0.0, shared=True)
        solo_anonymizer.publish_all(t=0.0, shared=False)
        for i in range(500):
            a = shared_server.private.region_of(shared_anonymizer.pseudonym_of(i))
            b = solo_server.private.region_of(solo_anonymizer.pseudonym_of(i))
            assert a == b, i

    def test_publish_all_shared_saves_cloak_computations(self, uniform_points_500):
        cloaker = PyramidCloaker(BOUNDS, height=4)  # coarse: heavy sharing
        anonymizer = LocationAnonymizer(cloaker, LocationServer())
        for i, p in enumerate(uniform_points_500):
            anonymizer.register(i, PrivacyProfile.always(k=10), p)
        anonymizer.publish_all(t=0.0, shared=True)
        assert cloaker.stats.cloaks < 500

    def test_publish_all_shared_handles_mixed_profiles(self, uniform_points_500):
        anonymizer = LocationAnonymizer(
            PyramidCloaker(BOUNDS, height=6), LocationServer()
        )
        for i, p in enumerate(uniform_points_500):
            if i % 3 == 0:
                profile = PrivacyProfile.always(k=1)  # exact point path
            elif i % 3 == 1:
                profile = PrivacyProfile.always(k=10)
            else:
                profile = PrivacyProfile.always(k=10_000)  # clamped path
            anonymizer.register(i, profile, p)
        results = anonymizer.publish_all(t=0.0, shared=True)
        assert len(results) == 500
        for i, result in results.items():
            if i % 3 == 0:
                assert result.region.area == 0.0
            elif i % 3 == 2:
                assert not result.k_satisfied  # honest best-effort record
                assert result.user_count == 500
            assert result.region.contains_point(uniform_points_500[i])

    def test_publish_without_server_raises(self, uniform_points_500):
        anonymizer = LocationAnonymizer(PyramidCloaker(BOUNDS, height=6))
        anonymizer.register("u", PrivacyProfile(), Point(1, 1))
        with pytest.raises(RegistrationError, match="not connected"):
            anonymizer.publish("u", t=0.0)

    def test_connect_later(self, uniform_points_500):
        anonymizer = LocationAnonymizer(PyramidCloaker(BOUNDS, height=6))
        for i, p in enumerate(uniform_points_500):
            anonymizer.register(i, PrivacyProfile.always(k=5), p)
        anonymizer.connect(LocationServer())
        anonymizer.publish(0, t=0.0)
        assert len(anonymizer.server.private) == 1

    def test_stable_pseudonym_updates_in_place(self, anonymizer):
        anonymizer.publish(0, t=0.0)
        anonymizer.update_location(0, Point(99, 1))
        anonymizer.publish(0, t=1.0)
        assert len(anonymizer.server.private) == 1

    def test_rotating_pseudonyms(self, uniform_points_500):
        server = LocationServer()
        anonymizer = LocationAnonymizer(
            PyramidCloaker(BOUNDS, height=6), server, rotate_pseudonyms=True
        )
        for i, p in enumerate(uniform_points_500):
            anonymizer.register(i, PrivacyProfile.always(k=5), p)
        first = anonymizer.pseudonym_of(0)
        anonymizer.publish(0, t=0.0)
        anonymizer.publish(0, t=1.0)
        second = anonymizer.pseudonym_of(0)
        assert first != second
        assert len(server.private) == 1  # old pseudonym retired

    def test_exact_location_never_reaches_server(self, anonymizer, uniform_points_500):
        """The core privacy property: with k > 1 the server never stores a
        region small enough to pinpoint the user."""
        anonymizer.publish_all(t=0.0)
        for i in range(500):
            pseudonym = anonymizer.pseudonym_of(i)
            region = anonymizer.server.private.region_of(pseudonym)
            assert region.area > 0.0
            assert region.contains_point(uniform_points_500[i])


class TestTradeoffPreview:
    def test_preview_reports_monotone_areas(self, anonymizer):
        rows = anonymizer.preview(0, [1, 5, 20, 100])
        areas = [area for _, area, _ in rows]
        assert areas == sorted(areas)
        for k, _, users in rows:
            assert users >= k

    def test_preview_does_not_publish(self, anonymizer):
        anonymizer.preview(0, [10, 50])
        assert len(anonymizer.server.private) == 0

    def test_preview_unknown_user_raises(self, anonymizer):
        with pytest.raises(RegistrationError):
            anonymizer.preview("ghost", [5])

    def test_suggest_k_for_area_is_maximal(self, anonymizer):
        from repro.core.profiles import PrivacyRequirement

        budget = 100.0
        k = anonymizer.suggest_k_for_area(0, budget)
        assert anonymizer.cloaker.cloak(0, PrivacyRequirement(k=k)).area <= budget
        if k < anonymizer.cloaker.user_count():
            over = anonymizer.cloaker.cloak(0, PrivacyRequirement(k=k + 1)).area
            assert over > budget

    def test_suggest_k_huge_budget_returns_population(self, anonymizer):
        assert anonymizer.suggest_k_for_area(0, 1e9) == 500

    def test_suggest_k_zero_budget_returns_one(self, anonymizer):
        assert anonymizer.suggest_k_for_area(0, 0.0) == 1

    def test_suggest_k_respects_ceiling(self, anonymizer):
        assert anonymizer.suggest_k_for_area(0, 1e9, k_ceiling=25) == 25

    def test_suggest_k_negative_budget_raises(self, anonymizer):
        with pytest.raises(RegistrationError):
            anonymizer.suggest_k_for_area(0, -1.0)


class TestQueryProxying:
    def test_private_range_query(self, anonymizer, uniform_points_500):
        for j in range(30):
            anonymizer.server.add_public_object(("poi", j), Point(3 * j, 50))
        cloak, result = anonymizer.private_range_query(0, radius=10.0, t=0.0)
        assert result.region == cloak.region
        # The server-side region is the cloak, not the user point.
        assert cloak.region.area > 0.0

    def test_private_nn_query(self, anonymizer):
        for j in range(30):
            anonymizer.server.add_public_object(("poi", j), Point(3 * j, 50))
        cloak, result = anonymizer.private_nn_query(0, t=0.0)
        assert len(result.candidates) >= 1

    def test_query_without_server_raises(self):
        anonymizer = LocationAnonymizer(PyramidCloaker(BOUNDS, height=6))
        anonymizer.register("u", PrivacyProfile(), Point(1, 1))
        with pytest.raises(RegistrationError):
            anonymizer.private_range_query("u", 1.0, 0.0)
        with pytest.raises(RegistrationError):
            anonymizer.private_nn_query("u", 0.0)


class TestWithIncrementalCloaker:
    def test_anonymizer_over_incremental_wrapper(self, uniform_points_500):
        wrapper = IncrementalCloaker(PyramidCloaker(BOUNDS, height=6))
        server = LocationServer()
        anonymizer = LocationAnonymizer(wrapper, server)
        for i, p in enumerate(uniform_points_500):
            anonymizer.register(i, PrivacyProfile.always(k=10), p)
        first = anonymizer.publish(0, t=0.0)
        second = anonymizer.publish(0, t=1.0)
        assert not first.reused and second.reused
        assert second.region == first.region
