"""Unit tests for the cost-based query planner."""

import pytest

from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.errors import QueryError
from repro.core.profiles import PrivacyProfile
from repro.core.server import LocationServer
from repro.core.system import PrivacySystem
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.users import MobileUser
from repro.obs.events import PLANNER_CALIBRATED, PLANNER_DECISION
from repro.planner import BACKEND_NAMES, CostModel, QueryPlanner
from repro.queries.probabilistic import CountAnswer
from repro.queries.spec import CountSpec, KNNSpec, NNSpec, RangeSpec

BOUNDS = Rect(0, 0, 100, 100)


@pytest.fixture
def system(uniform_points_500):
    system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=6))
    for i, p in enumerate(uniform_points_500[:200]):
        system.add_user(MobileUser(i, p, PrivacyProfile.always(k=8)))
    for j in range(60):
        system.add_poi(("poi", j), Point((17 * j) % 100, (41 * j) % 100))
    system.publish_all()
    return system


@pytest.fixture
def planner(system):
    return system.planner


class TestDecisions:
    def test_ranked_candidates_cheapest_first(self, planner):
        decision = planner.decide(RangeSpec(window=Rect(10, 10, 50, 50)))
        assert decision.kind == "public_over_public_range"
        seconds = [c.seconds for c in decision.ranked]
        assert seconds == sorted(seconds)
        assert (decision.backend, decision.route) == (
            decision.ranked[0].backend,
            decision.ranked[0].route,
        )
        assert not decision.pinned and not decision.forced

    def test_all_backends_eligible_for_public_range(self, planner):
        decision = planner.decide(RangeSpec(window=Rect(10, 10, 50, 50)))
        backends = {c.backend for c in decision.ranked}
        assert backends == set(BACKEND_NAMES)
        assert {c.route for c in decision.ranked} == {"scalar", "vectorized"}

    def test_decision_event_emitted(self, system, planner):
        planner.decide(CountSpec(window=Rect(0, 0, 40, 40)))
        events = list(system.obs.events.events(PLANNER_DECISION))
        assert events
        last = events[-1].attrs
        assert last["query"] == "public_count"
        assert last["backend"] in BACKEND_NAMES
        assert last["route"] in ("scalar", "vectorized")
        assert last["candidates"]

    def test_forcing_an_eligible_choice(self, planner):
        spec = KNNSpec(point=Point(50, 50), k=3)
        decision = planner.decide(spec, backend="kdtree", route="scalar")
        assert decision.forced
        assert (decision.backend, decision.route) == ("kdtree", "scalar")
        assert decision.reason == "forced by caller"

    def test_forcing_ineligible_choice_raises(self, planner):
        spec = NNSpec(flavor="private", region=Rect(20, 20, 30, 30))
        with pytest.raises(QueryError, match="not an eligible execution"):
            planner.decide(spec, backend="grid")

    def test_private_nn_pinned_to_native_store(self, planner):
        decision = planner.decide(
            NNSpec(flavor="private", region=Rect(20, 20, 30, 30))
        )
        assert decision.pinned
        assert (decision.backend, decision.route) == ("rtree", "scalar")
        assert decision.kind == "private_nn"

    def test_private_knn_and_monte_carlo_pinned(self, planner):
        knn = planner.decide(
            KNNSpec(flavor="private", region=Rect(20, 20, 30, 30), k=3)
        )
        nn = planner.decide(NNSpec(dataset="private", point=Point(50, 50)))
        assert knn.pinned and knn.kind == "private_knn"
        assert nn.pinned and nn.kind == "public_nn"
        for decision in (knn, nn):
            assert (decision.backend, decision.route) == ("rtree", "scalar")

    def test_count_backends_need_degenerate_regions(self, planner):
        # Cloaked regions have area, so point-replica backends are out:
        # only the native R-tree and the vectorized kernels remain.
        decision = planner.decide(CountSpec(window=Rect(0, 0, 40, 40)))
        assert {c.backend for c in decision.ranked} == {"rtree"}

    def test_to_plan_node_shows_chosen_and_rejected(self, planner):
        decision = planner.decide(RangeSpec(window=Rect(10, 10, 50, 50)))
        node = decision.to_plan_node()
        assert node.op == "planner.decision"
        ops = [child.op for child in node.children]
        assert ops.count("planner.chosen") == 1
        assert ops.count("planner.rejected") == len(decision.ranked) - 1


class TestCalibration:
    def test_calibrates_once_for_stable_store(self, planner):
        planner.decide(RangeSpec(window=Rect(10, 10, 50, 50)))
        planner.decide(KNNSpec(point=Point(50, 50), k=3))
        assert planner.collector.calibrations == 1

    def test_recalibrates_after_2x_growth(self, system, planner):
        planner.decide(RangeSpec(window=Rect(10, 10, 50, 50)))
        for j in range(200):
            system.add_poi(("extra", j), Point((13 * j) % 97, (29 * j) % 89))
        planner.decide(RangeSpec(window=Rect(10, 10, 50, 50)))
        assert planner.collector.calibrations == 2

    def test_calibrated_event_and_stats_content(self, system, planner):
        stats = planner.stats()
        events = list(system.obs.events.events(PLANNER_CALIBRATED))
        assert events and events[-1].attrs["n_public"] == stats.n_public
        assert set(stats.backends) == set(BACKEND_NAMES)
        assert stats.kernels is not None
        assert stats.calibration_sample == 60
        for cal in stats.backends.values():
            assert all(s >= 0.0 for s in cal.range_seconds)
            assert cal.knn_distance_computations >= 0.0
        assert stats.live_counters["server.public"]["nn_queries"] >= 0

    def test_stats_round_trip_to_dict(self, planner):
        record = planner.stats().to_dict()
        import json

        assert json.loads(json.dumps(record)) == record

    def test_cost_model_ranks_deterministically(self, planner):
        stats = planner.stats()
        model = CostModel(stats)
        spec = RangeSpec(window=Rect(10, 10, 50, 50))
        first = planner.decide(spec)
        second = planner.decide(spec)
        assert [
            (c.backend, c.route) for c in first.ranked
        ] == [(c.backend, c.route) for c in second.ranked]
        assert model.selectivity(BOUNDS.area) == pytest.approx(1.0)


class TestExecution:
    def test_planned_query_counted_under_native_kind(self, system):
        before = system.server.stats().queries_by_kind.get("public_count", 0)
        answer = system.query(CountSpec(window=Rect(0, 0, 40, 40)))
        assert isinstance(answer, CountAnswer)
        after = system.server.stats().queries_by_kind["public_count"]
        assert after == before + 1

    def test_planned_count_matches_native_entry_point(self, system):
        window = Rect(0, 0, 40, 40)
        planned = system.query(CountSpec(window=window))
        native = system.server.public_count(window)
        assert planned.probabilities == native.probabilities

    def test_query_rejects_non_specs(self, system):
        with pytest.raises(QueryError, match="QuerySpec"):
            system.query(Rect(0, 0, 1, 1))

    def test_planner_rejects_user_bound_specs(self, planner):
        with pytest.raises(QueryError, match="PrivacySystem.query"):
            planner.execute(RangeSpec(flavor="private", user=0, radius=5.0))

    def test_user_bound_range_runs_full_pipeline(self, system):
        outcome, refined = system.query(
            RangeSpec(flavor="private", user=0, radius=10.0)
        )
        assert outcome.correct
        assert outcome.candidates >= outcome.answer_size == len(refined)

    def test_user_bound_knn_pipeline(self, system):
        outcome, refined = system.query(
            KNNSpec(flavor="private", user=3, k=4)
        )
        assert outcome.correct
        assert outcome.k == 4
        assert len(refined) == 4
        assert system.ledger.summary()["knn_accuracy"] == 1.0

    def test_execute_batch_specs_match_single_queries(self, system):
        specs = [
            RangeSpec(window=Rect(10, 10, 50, 50)),
            CountSpec(window=Rect(0, 0, 40, 40)),
            KNNSpec(point=Point(50, 50), k=3),
            RangeSpec(flavor="private", user=1, radius=8.0),
        ]
        batch = system.execute_batch(specs)
        assert batch[0] == system.query(specs[0])
        assert batch[1].probabilities == system.query(specs[1]).probabilities
        assert batch[2] == system.query(specs[2])
        outcome, refined = batch[3]
        assert outcome.correct and isinstance(refined, list)

    def test_deprecated_wrappers_warn_and_delegate(self, system):
        with pytest.warns(DeprecationWarning, match="user_range_query"):
            outcome, _ = system.user_range_query(0, radius=10.0)
        assert outcome.correct
        with pytest.warns(DeprecationWarning, match="user_nn_query"):
            nn_outcome, _ = system.user_nn_query(0)
        assert nn_outcome.correct


class TestExplainSpec:
    def test_explain_spec_embeds_decision(self, system):
        from repro.obs import QueryExplainer

        explainer = QueryExplainer(system.server)
        plan = explainer.explain_spec(CountSpec(window=Rect(0, 0, 40, 40)))
        assert plan.op == "planned.public_count"
        ops = {child.op for child in plan.children}
        assert "planner.decision" in ops
        execute = next(c for c in plan.children if c.op == "execute")
        assert execute.detail["store"] == "private"

    def test_explain_spec_rejects_user_bound(self, system):
        from repro.obs import QueryExplainer

        explainer = QueryExplainer(system.server)
        with pytest.raises(ValueError, match="user-bound"):
            explainer.explain_spec(
                RangeSpec(flavor="private", user=0, radius=5.0)
            )


class TestStandaloneServer:
    def test_empty_store_only_rtree_is_eligible(self):
        from repro.obs import Telemetry

        server = LocationServer(telemetry=Telemetry(enabled=False))
        planner = QueryPlanner(server, universe=Rect(0, 0, 10, 10))
        decision = planner.decide(RangeSpec(window=Rect(0, 0, 5, 5)))
        assert {c.backend for c in decision.ranked} == {"rtree"}
        assert planner.execute(RangeSpec(window=Rect(0, 0, 5, 5))) == ()

    def test_engine_routes_length_mismatch_raises(self):
        from repro.engine.queries import PublicRangeQuery
        from repro.obs import Telemetry

        server = LocationServer(telemetry=Telemetry(enabled=False))
        with pytest.raises(ValueError, match="routes length"):
            server.engine.execute(
                [PublicRangeQuery(Rect(0, 0, 1, 1))], routes=[True, False]
            )
