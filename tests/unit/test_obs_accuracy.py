"""Plan-accuracy auditing (repro.obs.accuracy): online monitor + offline join."""

import json

import pytest

from repro.obs import AccuracyMonitor, EventLog, PlanAccuracyAuditor, Telemetry
from repro.obs.events import (
    PLANNER_CALIBRATED,
    PLANNER_DECISION,
    PLANNER_MEASURED,
    PLANNER_MISPREDICT,
)
from repro.planner.planner import Decision


def decision(
    kind="public_range",
    backend="rtree",
    route="scalar",
    seconds=1e-4,
    pinned=False,
):
    return Decision(
        kind=kind,
        backend=backend,
        route=route,
        seconds=seconds,
        reason="test",
        pinned=pinned,
    )


class TestAccuracyMonitor:
    def test_calibrated_group_stays_quiet(self):
        monitor = AccuracyMonitor(min_samples=4)
        emitted = []
        for _ in range(10):
            ratio = monitor.observe(
                decision(seconds=1e-4),
                1.1e-4,
                emit=lambda *a, **k: emitted.append(a[0]),
            )
        assert ratio == 1.1e-4 / 1e-4
        assert emitted == []
        assert monitor.mispredicts == 0
        assert monitor.poll_recalibration() is None

    def test_mispredict_is_edge_triggered(self):
        monitor = AccuracyMonitor(threshold=4.0, min_samples=4)
        emitted = []
        emit = lambda *args, **attrs: emitted.append((args[0], attrs))
        for _ in range(10):
            monitor.observe(decision(seconds=1e-5), 1e-3, emit=emit)
        kinds = [kind for kind, _ in emitted]
        assert kinds == [PLANNER_MISPREDICT], "one event per excursion, not per obs"
        attrs = emitted[0][1]
        assert attrs["query"] == "public_range"
        assert attrs["backend"] == "rtree"
        assert attrs["route"] == "scalar"
        assert attrs["median_ratio"] > 4.0
        assert monitor.mispredicts == 1

    def test_underprediction_and_overprediction_both_fold(self):
        slow = AccuracyMonitor(min_samples=2)
        fast = AccuracyMonitor(min_samples=2)
        for _ in range(4):
            slow.observe(decision(seconds=1e-5), 1e-3)  # 100x too slow
            fast.observe(decision(seconds=1e-3), 1e-5)  # 100x too fast
        assert slow.mispredicts == 1
        assert fast.mispredicts == 1

    def test_sub_nanosecond_predictions_are_skipped(self):
        monitor = AccuracyMonitor()
        assert monitor.observe(decision(seconds=1e-12), 1.0) is None
        assert monitor.observed == 0

    def test_drift_triggers_recalibration_request(self):
        monitor = AccuracyMonitor(threshold=4.0, drift_band=4.0, min_samples=4)
        for _ in range(8):
            monitor.observe(decision(seconds=1e-5), 1e-3)
        reason = monitor.poll_recalibration()
        assert reason is not None and "drift" in reason
        assert monitor.recalibrations == 1
        # Collected once; windows reset and the check re-arms quietly.
        assert monitor.poll_recalibration() is None
        assert monitor.report()["groups"] == {}

    def test_quiet_period_after_recalibration(self):
        monitor = AccuracyMonitor(
            threshold=4.0, drift_band=4.0, window=8, min_samples=4
        )
        for _ in range(8):
            monitor.observe(decision(seconds=1e-5), 1e-3)
        assert monitor.poll_recalibration() is not None
        # Still mispredicting, but within the quiet window: no new request.
        for _ in range(4):
            monitor.observe(decision(seconds=1e-5), 1e-3)
        assert monitor.poll_recalibration() is None
        # Once the quiet window has been re-sampled, the request re-arms.
        for _ in range(8):
            monitor.observe(decision(seconds=1e-5), 1e-3)
        assert monitor.poll_recalibration() is not None

    def test_groups_tracked_independently(self):
        monitor = AccuracyMonitor(min_samples=4)
        for _ in range(6):
            monitor.observe(decision(kind="public_range", seconds=1e-4), 1.2e-4)
            monitor.observe(decision(kind="public_nn", seconds=1e-5), 2e-3)
        report = monitor.report()
        assert report["groups"]["public_range/rtree/scalar"]["mispredict"] is False
        assert report["groups"]["public_nn/rtree/scalar"]["mispredict"] is True
        assert report["drift_folded"] > 1.0

    def test_report_is_json_serialisable(self):
        monitor = AccuracyMonitor(min_samples=2)
        for _ in range(4):
            monitor.observe(decision(), 2e-4)
        report = monitor.report()
        assert json.loads(json.dumps(report)) == report
        assert report["schema"] == "repro.obs.accuracy/1"
        assert report["source"] == "online"


class TestPinnedRoutes:
    """Pinned decisions learn a cost bias instead of raising mispredicts."""

    def test_pinned_observations_never_flag(self):
        monitor = AccuracyMonitor(threshold=4.0, min_samples=4)
        emitted = []
        emit = lambda *args, **attrs: emitted.append((args[0], attrs))
        for _ in range(10):
            monitor.observe(decision(seconds=1e-5, pinned=True), 1e-3, emit=emit)
        assert monitor.mispredicts == 0
        assert PLANNER_MISPREDICT not in [kind for kind, _ in emitted]
        assert monitor.poll_recalibration() is None  # no drift either

    def test_bias_learned_from_median_ratio(self):
        monitor = AccuracyMonitor(min_samples=4)
        emitted = []
        emit = lambda *args, **attrs: emitted.append((args[0], attrs))
        for _ in range(4):
            monitor.observe(decision(seconds=1e-4, pinned=True), 1e-3, emit=emit)
        assert monitor.pinned_bias("public_range", "rtree", "scalar") == (
            pytest.approx(10.0)
        )
        assert monitor.pinned_recalibrations == 1
        kinds = [kind for kind, _ in emitted]
        assert kinds == [PLANNER_CALIBRATED]
        attrs = emitted[0][1]
        assert attrs["scope"] == "pinned"
        assert attrs["bias"] == pytest.approx(10.0)

    def test_bias_update_converges_and_goes_quiet(self):
        monitor = AccuracyMonitor(min_samples=4)
        base = 1e-4
        for _ in range(4):
            monitor.observe(decision(seconds=base, pinned=True), 1e-3)
        bias = monitor.pinned_bias("public_range", "rtree", "scalar")
        # The planner now predicts base * bias; measured ratios sit at
        # 1.0 and the band (1.5x) keeps the bias untouched.
        for _ in range(10):
            monitor.observe(
                decision(seconds=base * bias, pinned=True), 1e-3
            )
        assert monitor.pinned_bias("public_range", "rtree", "scalar") == bias
        assert monitor.pinned_recalibrations == 1

    def test_in_band_pinned_group_learns_no_bias(self):
        monitor = AccuracyMonitor(min_samples=4)
        for _ in range(10):
            monitor.observe(decision(seconds=1e-4, pinned=True), 1.2e-4)
        assert monitor.pinned_bias("public_range", "rtree", "scalar") == 1.0
        assert monitor.pinned_recalibrations == 0

    def test_report_carries_pinned_groups(self):
        monitor = AccuracyMonitor(min_samples=4)
        for _ in range(6):
            monitor.observe(
                decision(kind="private_nn", seconds=1e-5, pinned=True), 1e-3
            )
        report = monitor.report()
        group = report["pinned_groups"]["private_nn/rtree/scalar"]
        assert group["bias"] > 1.0
        assert report["pinned_recalibrations"] == 1
        assert json.loads(json.dumps(report)) == report

    def test_reset_clears_pinned_state(self):
        monitor = AccuracyMonitor(min_samples=2)
        for _ in range(4):
            monitor.observe(decision(seconds=1e-5, pinned=True), 1e-3)
        assert monitor.pinned_recalibrations >= 1
        monitor.reset()
        assert monitor.pinned_bias("public_range", "rtree", "scalar") == 1.0
        assert monitor.pinned_recalibrations == 0
        assert monitor.report()["pinned_groups"] == {}

    def test_planner_applies_bias_to_pinned_decisions(self):
        from repro.cloaking.pyramid_cloak import PyramidCloaker
        from repro.core.profiles import PrivacyProfile
        from repro.core.system import PrivacySystem
        from repro.geometry.point import Point
        from repro.geometry.rect import Rect
        from repro.mobility.users import MobileUser
        from repro.queries.spec import NNSpec

        bounds = Rect(0, 0, 100, 100)
        system = PrivacySystem(bounds, PyramidCloaker(bounds, height=5))
        for i in range(30):
            system.add_user(
                MobileUser(
                    i,
                    Point((13 * i) % 100, (29 * i) % 100),
                    PrivacyProfile.always(k=3),
                )
            )
        for j in range(10):
            system.add_poi(("poi", j), Point((17 * j) % 100, (41 * j) % 100))
        system.publish_all()

        planner = system.planner
        spec = NNSpec(flavor="private", user=0)
        before = planner.decide(spec)
        assert before.pinned
        # Ten observations, each 10x the (possibly biased) prediction.
        for _ in range(10):
            current = planner.decide(spec)
            planner.accuracy.observe(current, current.seconds * 10.0)
        after = planner.decide(spec)
        bias = planner.accuracy.pinned_bias(
            after.kind, after.backend, after.route
        )
        assert bias > 1.0
        assert after.seconds == pytest.approx(before.seconds * bias)
        assert planner.accuracy.mispredicts == 0


class TestPlanAccuracyAuditor:
    def _trail(self):
        """One joined query, one unjoined measurement, one mispredict."""
        obs = Telemetry()
        with obs.correlate("q") as qid:
            obs.emit(PLANNER_DECISION, query="public_range", backend="rtree",
                     route="scalar", est_seconds=1e-4)
            obs.emit(PLANNER_MEASURED, query="public_range", backend="rtree",
                     route="scalar", seconds=2e-4, est_seconds=1e-4, n=1)
        obs.emit(PLANNER_MEASURED, query="public_nn", backend="rtree",
                 route="scalar", seconds=1e-2, est_seconds=1e-5, n=1)
        obs.emit(PLANNER_MISPREDICT, query="public_nn", backend="rtree",
                 route="scalar", median_ratio=1000.0)
        obs.emit(PLANNER_CALIBRATED, reason="test")
        return obs, qid

    def test_join_and_group_accounting(self):
        obs, _ = self._trail()
        report = PlanAccuracyAuditor().consume(obs.events.events()).report()
        assert report["decisions"] == 1
        assert report["measured"] == 2
        assert report["joined"] == 1
        assert report["mispredict_events"] == 1
        assert report["calibrations"] == 1
        assert report["groups"]["public_range/rtree/scalar"]["mispredict"] is False
        assert report["groups"]["public_nn/rtree/scalar"]["mispredict"] is True
        assert report["mispredicting_groups"] == 1

    def test_ratio_survives_evicted_decision(self):
        # Measurements carry est_seconds inline: a trail whose decision
        # events rolled off the ring still yields ratios (join tally 0).
        obs = Telemetry()
        obs.emit(PLANNER_MEASURED, query="public_range", backend="rtree",
                 route="scalar", seconds=4e-4, est_seconds=1e-4, n=1,
                 qid="q-999999")
        report = PlanAccuracyAuditor().consume(obs.events.events()).report()
        assert report["joined"] == 0
        assert report["groups"]["public_range/rtree/scalar"]["median_ratio"] == 4.0

    def test_round_trips_through_jsonl(self, tmp_path):
        from repro.obs.events import read_jsonl

        obs, _ = self._trail()
        path = tmp_path / "trail.jsonl"
        path.write_text(obs.events.dump_jsonl())
        report = PlanAccuracyAuditor().consume(read_jsonl(str(path))).report()
        assert report["measured"] == 2 and report["joined"] == 1
        assert json.loads(json.dumps(report)) == report

    def test_empty_trail_reports_cleanly(self):
        report = PlanAccuracyAuditor().consume(EventLog().events()).report()
        assert report["measured"] == 0
        assert report["median_folded"] == 1.0
        assert report["groups"] == {}
