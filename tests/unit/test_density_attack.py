"""Unit tests for the density-weighted adversary."""

import numpy as np
import pytest

from repro.attacks.density import DensityModel, DensityWeightedAttack
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)


def skewed_model():
    """Almost everyone lives in the 10x10 block at (10..20, 10..20)."""
    dense = [Point(15.0 + 0.01 * i, 15.0) for i in range(200)]
    sparse = [Point(80.0, 80.0 + 0.01 * i) for i in range(5)]
    return DensityModel(BOUNDS, resolution=10).fit(dense + sparse)


class TestDensityModel:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DensityModel(BOUNDS, resolution=0)
        with pytest.raises(ValueError):
            DensityModel(Rect(0, 0, 0, 1))

    def test_posterior_sums_to_one(self):
        model = skewed_model()
        posterior = model.posterior_in(Rect(0, 0, 100, 100))
        assert sum(p for _, p in posterior) == pytest.approx(1.0)

    def test_posterior_concentrates_on_dense_block(self):
        model = skewed_model()
        region = Rect(0, 0, 50, 50)  # covers the dense block + empty space
        posterior = model.posterior_in(region)
        heaviest_cell, heaviest_mass = max(posterior, key=lambda item: item[1])
        assert heaviest_cell.contains_point(Point(15, 15))
        assert heaviest_mass > 0.95

    def test_empty_region_falls_back_to_uniform(self):
        model = skewed_model()
        region = Rect(40, 40, 60, 60)  # nobody lives here
        posterior = model.posterior_in(region)
        assert sum(p for _, p in posterior) == pytest.approx(1.0)
        masses = [p for _, p in posterior]
        assert max(masses) == pytest.approx(min(masses), rel=1e-9)

    def test_map_point_in_dense_chunk(self):
        model = skewed_model()
        guess = model.map_point(Rect(0, 0, 50, 50))
        assert guess.distance_to(Point(15, 15)) < 8.0

    def test_effective_anonymity_low_when_skewed(self):
        model = skewed_model()
        skewed_region = Rect(0, 0, 50, 50)
        uniform_region = Rect(40, 40, 60, 60)
        assert model.effective_anonymity(skewed_region) < 1.5
        assert model.effective_anonymity(uniform_region) > 2.0

    def test_fit_ignores_out_of_bounds(self):
        model = DensityModel(BOUNDS, resolution=4).fit([Point(500, 500)])
        posterior = model.posterior_in(Rect(0, 0, 100, 100))
        masses = [p for _, p in posterior]
        assert max(masses) == pytest.approx(min(masses))  # uniform fallback


class TestDensityWeightedAttack:
    def test_beats_center_attack_on_skewed_population(self, rng):
        """A region straddling the dense block: MAP guess lands in the
        block, the centre guess does not."""
        from repro.attacks.location import CenterAttack

        model = skewed_model()
        attack = DensityWeightedAttack(model)
        center = CenterAttack()
        region = Rect(5, 5, 60, 60)
        true_location = Point(15.5, 15.2)  # the victim is where people are
        density_outcome = attack.attack(region, true_location)
        center_outcome = center.attack(region, true_location)
        assert density_outcome.error < center_outcome.error

    def test_attack_name(self):
        assert DensityWeightedAttack(skewed_model()).name == "density"

    def test_guess_inside_region(self):
        model = skewed_model()
        attack = DensityWeightedAttack(model)
        for region in [Rect(0, 0, 30, 30), Rect(70, 70, 95, 95), Rect(2, 2, 98, 98)]:
            assert region.expanded(1e-9).contains_point(attack.guess(region))
