"""Correlation IDs (repro.obs.correlate) and their pipeline wiring."""

import numpy as np
import pytest

from repro import (
    CountSpec,
    MobileUser,
    NNSpec,
    PrivacyProfile,
    PrivacySystem,
    PyramidCloaker,
    RangeSpec,
    Telemetry,
)
from repro.geometry import Point, Rect
from repro.obs import CorrelationIds, correlate_events
from repro.obs.correlate import CORRELATION_METRIC
from repro.obs.events import PLANNER_DECISION, PLANNER_MEASURED, QUERY_COMPLETED
from repro.obs.metrics import MetricsRegistry


class TestCorrelationIds:
    def test_mint_is_monotonic_and_kind_prefixed(self):
        ids = CorrelationIds()
        assert ids.mint("q") == "q-000001"
        assert ids.mint("b") == "b-000002"
        assert ids.mint("q") == "q-000003"

    def test_mint_counts_per_kind(self):
        registry = MetricsRegistry()
        ids = CorrelationIds(registry)
        ids.mint("q")
        ids.mint("q")
        ids.mint("b")
        counters = registry.snapshot()["counters"]
        assert counters[f"{CORRELATION_METRIC}{{kind=q}}"] == 2
        assert counters[f"{CORRELATION_METRIC}{{kind=b}}"] == 1

    def test_scope_sets_and_restores_current(self):
        ids = CorrelationIds()
        assert ids.current is None
        with ids.scope("q") as qid:
            assert ids.current == qid
        assert ids.current is None

    def test_batch_scope_sets_both_ids(self):
        ids = CorrelationIds()
        with ids.scope("b") as bid:
            assert ids.current == bid
            assert ids.batch == bid
        assert ids.current is None and ids.batch is None

    def test_nested_query_inside_batch(self):
        ids = CorrelationIds()
        with ids.scope("b") as bid:
            with ids.scope("q") as qid:
                assert qid != bid
                assert ids.current == qid
                assert ids.batch == bid
            assert ids.current == bid

    def test_reuse_joins_active_scope_of_same_kind(self):
        ids = CorrelationIds()
        with ids.scope("b") as bid:
            with ids.scope("b", reuse=True) as inner:
                assert inner == bid
        with ids.scope("q") as qid:
            with ids.scope("q", reuse=True) as inner:
                assert inner == qid

    def test_reuse_without_active_scope_mints(self):
        ids = CorrelationIds()
        with ids.scope("q", reuse=True) as qid:
            assert qid.startswith("q-")

    def test_reuse_query_under_batch_mints_fresh(self):
        # A batch id is not a query id: planner.execute under a bare
        # batch scope is a new query, not the batch itself.
        ids = CorrelationIds()
        with ids.scope("b") as bid:
            with ids.scope("q", reuse=True) as qid:
                assert qid != bid and qid.startswith("q-")

    def test_stamp_writes_qid_and_bid(self):
        ids = CorrelationIds()
        with ids.scope("b"):
            with ids.scope("q"):
                attrs = {}
                ids.stamp(attrs)
                assert attrs == {"qid": ids.current, "bid": ids.batch}

    def test_stamp_omits_bid_when_identical(self):
        ids = CorrelationIds()
        with ids.scope("b") as bid:
            attrs = {}
            ids.stamp(attrs)
            assert attrs == {"qid": bid}

    def test_stamp_is_noop_outside_scope(self):
        ids = CorrelationIds()
        attrs = {"kind": "x"}
        ids.stamp(attrs)
        assert attrs == {"kind": "x"}

    def test_explicit_ids_win_over_stamp(self):
        ids = CorrelationIds()
        with ids.scope("q"):
            attrs = {"qid": "caller-chose"}
            ids.stamp(attrs)
            assert attrs["qid"] == "caller-chose"


class TestTelemetryStamping:
    def test_events_and_spans_stamped_inside_scope(self):
        obs = Telemetry()
        with obs.correlate("q") as qid:
            obs.emit("cloak.attempt", user="u")
            with obs.span("server.private_range"):
                pass
        event = next(iter(obs.events.events()))
        span = list(obs.tracer.spans())[0]
        assert event.attrs["qid"] == qid
        assert span.attrs["qid"] == qid

    def test_unscoped_emission_is_unstamped(self):
        obs = Telemetry()
        obs.emit("cloak.attempt", user="u")
        event = next(iter(obs.events.events()))
        assert "qid" not in event.attrs


class TestCorrelateEvents:
    def test_groups_by_qid_in_first_seen_order(self):
        obs = Telemetry()
        with obs.correlate("q") as first:
            obs.emit("cloak.attempt")
            obs.emit("cloak.result")
        with obs.correlate("q") as second:
            obs.emit("query.completed")
        records = correlate_events(obs.events.events())
        assert list(records) == [first, second]
        assert records[first].kinds() == ["cloak.attempt", "cloak.result"]
        assert records[second].first("query.completed") is not None
        assert records[first].first("query.completed") is None

    def test_unstamped_events_are_skipped(self):
        obs = Telemetry()
        obs.emit("cloak.attempt")
        assert correlate_events(obs.events.events()) == {}

    def test_spans_joined_and_bid_recovered(self):
        obs = Telemetry()
        with obs.correlate("b") as bid:
            with obs.correlate("q") as qid:
                obs.emit("query.completed")
                with obs.span("client.refine"):
                    pass
        records = correlate_events(obs.events.events(), obs.tracer.spans())
        assert records[qid].bid == bid
        assert [span.name for span in records[qid].spans] == ["client.refine"]

    def test_to_dict_is_plain_data(self):
        obs = Telemetry()
        with obs.correlate("q") as qid:
            obs.emit("cloak.attempt")
            with obs.span("anonymizer.cloak"):
                pass
        record = obs.correlated_records()[qid]
        payload = record.to_dict()
        assert payload["qid"] == qid
        assert payload["events"][0]["kind"] == "cloak.attempt"
        assert payload["spans"][0]["name"] == "anonymizer.cloak"


@pytest.fixture(scope="module")
def worked_system():
    rng = np.random.default_rng(5)
    bounds = Rect(0, 0, 100, 100)
    system = PrivacySystem(bounds, PyramidCloaker(bounds, height=5))
    for j in range(12):
        x, y = rng.uniform(0, 100, 2)
        system.add_poi(f"poi-{j}", Point(float(x), float(y)))
    for i in range(40):
        x, y = rng.uniform(0, 100, 2)
        system.add_user(
            MobileUser(i, Point(float(x), float(y)), PrivacyProfile.always(k=4))
        )
    system.publish_all()
    for i in range(4):
        system.query(RangeSpec(flavor="private", user=i, radius=10.0))
        system.query(NNSpec(flavor="private", user=i))
    system.query(CountSpec(window=Rect(20, 20, 80, 80)))
    return system


class TestEndToEndCorrelation:
    def test_every_query_entry_point_mints_an_id(self, worked_system):
        counters = worked_system.obs.snapshot()["counters"]
        assert counters[f"{CORRELATION_METRIC}{{kind=q}}"] >= 9
        assert counters[f"{CORRELATION_METRIC}{{kind=b}}"] >= 1

    def test_query_completed_events_carry_qids(self, worked_system):
        completed = list(worked_system.obs.events.events(QUERY_COMPLETED))
        assert completed
        qids = [event.attrs["qid"] for event in completed]
        assert all(qid.startswith("q-") for qid in qids)
        assert len(set(qids)) == len(qids), "each query has its own id"

    def test_decision_and_measurement_share_a_qid(self, worked_system):
        records = worked_system.obs.correlated_records()
        joined = [
            record
            for record in records.values()
            if record.first(PLANNER_DECISION) is not None
            and record.first(PLANNER_MEASURED) is not None
        ]
        assert len(joined) >= 9
        for record in joined:
            decision = record.first(PLANNER_DECISION)
            measured = record.first(PLANNER_MEASURED)
            assert decision.attrs["query"] == measured.attrs["query"]

    def test_publish_all_is_one_batch_scope(self, worked_system):
        records = worked_system.obs.correlated_records()
        batch_records = [
            record for record in records.values() if record.qid.startswith("b-")
        ]
        assert batch_records, "publish_all must open a batch scope"
        cloak_kinds = {"cloak.result", "cloak.batch", "region.published"}
        assert any(
            cloak_kinds & set(record.kinds()) for record in batch_records
        )
