"""Unit tests for the batch engine: snapshots, kernels, wiring, goldens."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.core.server import LocationServer
from repro.engine import (
    BatchEngine,
    BruteForceOracle,
    PrivateNNQuery,
    PrivateRangeQuery,
    PublicCountQuery,
    PublicNNQuery,
    PublicRangeQuery,
    ServerSnapshot,
)
from repro.engine import kernels
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import Telemetry


def small_server() -> LocationServer:
    server = LocationServer(telemetry=Telemetry(enabled=False))
    for i, (x, y) in enumerate([(1, 1), (2, 5), (8, 3), (5, 5), (9, 9)]):
        server.add_public_object(f"o{i}", Point(float(x), float(y)))
    server.receive_region("u0", Rect(0, 0, 4, 4))
    server.receive_region("u1", Rect(6, 6, 10, 10))
    return server


class TestQueryValidation:
    def test_negative_radius_rejected(self):
        with pytest.raises(QueryError):
            PrivateRangeQuery(Rect(0, 0, 1, 1), radius=-1.0)

    def test_unknown_methods_rejected(self):
        with pytest.raises(QueryError):
            PrivateRangeQuery(Rect(0, 0, 1, 1), 1.0, method="voronoi")
        with pytest.raises(QueryError):
            PrivateNNQuery(Rect(0, 0, 1, 1), method="bogus")

    def test_non_positive_k_rejected(self):
        with pytest.raises(QueryError):
            PublicNNQuery(Point(0, 0), k=0)


class TestSnapshot:
    def test_reused_while_quiescent(self):
        engine = BatchEngine(small_server())
        assert engine.snapshot() is engine.snapshot()

    def test_invalidated_by_each_mutation_kind(self):
        server = small_server()
        engine = BatchEngine(server)
        first = engine.snapshot()
        server.move_public_object("o0", Point(3, 3))
        second = engine.snapshot()
        assert second is not first
        server.receive_region("u0", Rect(1, 1, 2, 2))
        third = engine.snapshot()
        assert third is not second
        server.remove_public_object("o1")
        assert engine.snapshot() is not third

    def test_arrays_are_immutable(self):
        snapshot = BatchEngine(small_server()).snapshot()
        with pytest.raises(ValueError):
            snapshot.public_xs[0] = 99.0
        with pytest.raises(ValueError):
            snapshot.private_bounds[0, 0] = 99.0

    def test_point_in_time_isolation(self):
        """A captured snapshot never sees later store mutations."""
        server = small_server()
        engine = BatchEngine(server)
        snapshot = engine.snapshot()
        n_before = snapshot.n_public
        server.add_public_object("late", Point(0, 0))
        assert snapshot.n_public == n_before
        assert not snapshot.matches(server)

    def test_capture_matches_store_contents(self):
        server = small_server()
        snapshot = ServerSnapshot.capture(server)
        assert set(snapshot.public_ids) == set(server.public)
        assert set(snapshot.private_ids) == set(server.private)
        for item, row in snapshot.public_rank.items():
            p = server.public.point_of(item)
            assert (snapshot.public_xs[row], snapshot.public_ys[row]) == (p.x, p.y)

    def test_grid_shared_per_snapshot(self):
        snapshot = BatchEngine(small_server()).snapshot()
        assert snapshot.public_grid is snapshot.public_grid


class TestEngineExecution:
    def test_results_align_with_input_order(self):
        server = small_server()
        engine = BatchEngine(server)
        batch = [
            PublicCountQuery(Rect(0, 0, 10, 10)),
            PublicRangeQuery(Rect(0, 0, 10, 10)),
            PublicNNQuery(Point(0, 0), k=2),
            PublicRangeQuery(Rect(0, 0, 3, 6)),
        ]
        results = engine.execute(batch)
        assert results[1] == ("o0", "o1", "o2", "o3", "o4")
        assert results[3] == ("o0", "o1")
        assert results[2] == ("o0", "o1")
        assert set(results[0].probabilities) == {"u0", "u1"}

    def test_knn_canonical_rank_tie_break(self):
        server = LocationServer(telemetry=Telemetry(enabled=False))
        for i in range(4):
            server.add_public_object(i, Point(1.0, 0.0))  # all equidistant
        engine = BatchEngine(server)
        [vec] = engine.execute([PublicNNQuery(Point(0, 0), k=2)])
        assert vec == (0, 1)  # earliest snapshot rows win exact ties

    def test_private_nn_uses_scalar_path_in_both_modes(self):
        server = small_server()
        engine = BatchEngine(server)
        query = PrivateNNQuery(Rect(2, 2, 4, 4), method="exact")
        [vec] = engine.execute([query])
        [seq] = engine.execute([query], vectorize=False)
        assert vec == seq

    def test_telemetry_counts_paths_and_snapshot_reuse(self):
        telemetry = Telemetry()
        server = small_server()
        engine = BatchEngine(server, telemetry=telemetry)
        batch = [
            PublicRangeQuery(Rect(0, 0, 5, 5)),
            PrivateNNQuery(Rect(0, 0, 2, 2)),
        ]
        engine.execute(batch)
        engine.execute(batch)
        counters = telemetry.snapshot()["counters"]
        assert counters["engine.queries{kind=public_range,path=vectorized}"] == 2
        assert counters["engine.queries{kind=private_nn,path=scalar}"] == 2
        assert counters["engine.snapshot{result=captured}"] == 1
        assert counters["engine.snapshot{result=reused}"] == 1


class TestServerAndSystemWiring:
    def test_server_execute_batch_counts_stats(self):
        server = small_server()
        before = server.stats().queries_served
        server.execute_batch(
            [PublicRangeQuery(Rect(0, 0, 1, 1)), PublicCountQuery(Rect(0, 0, 1, 1))]
        )
        stats = server.stats()
        assert stats.queries_served == before + 2
        assert stats.queries_by_kind["public_range"] == 1
        assert stats.queries_by_kind["public_count"] == 1

    def test_server_engine_is_cached(self):
        server = small_server()
        assert server.engine is server.engine

    def test_system_execute_batch(self, bounds):
        from repro import MobileUser, PrivacyProfile, PrivacySystem, PyramidCloaker

        system = PrivacySystem(bounds, PyramidCloaker(bounds, height=4))
        system.add_poi("poi", Point(10, 10))
        system.add_user(
            MobileUser("alice", Point(20, 20), PrivacyProfile.always(k=1))
        )
        system.publish_all()
        rows, answer = system.execute_batch(
            [PublicRangeQuery(Rect(0, 0, 50, 50)),
             PublicCountQuery(Rect(0, 0, 50, 50))]
        )
        assert rows == ("poi",)
        assert answer.expected == pytest.approx(1.0)


class TestKernels:
    def test_chunking_matches_unchunked(self, monkeypatch):
        rng = np.random.default_rng(9)
        xs = rng.uniform(0, 100, 300)
        ys = rng.uniform(0, 100, 300)
        windows = np.column_stack(
            [xs[:40] - 5, ys[:40] - 5, xs[:40] + 5, ys[:40] + 5]
        )
        want = kernels.points_in_windows(xs, ys, windows)
        monkeypatch.setattr(kernels, "CHUNK_CELLS", 512)
        got = kernels.points_in_windows(xs, ys, windows)
        got_grid = kernels.points_in_windows_grid(
            kernels.PointGrid(xs, ys), windows
        )
        for w, g, gg in zip(want, got, got_grid):
            assert np.array_equal(w, g)
            assert np.array_equal(w, gg)

    def test_smallest_k_boundary_ties_by_rank(self):
        d2 = np.array([4.0, 1.0, 2.0, 2.0, 2.0])
        assert list(kernels._smallest_k(d2, 2)) == [1, 2]
        assert list(kernels._smallest_k(d2, 3)) == [1, 2, 3]
        assert list(kernels._smallest_k(d2, 0)) == []
        assert list(kernels._smallest_k(d2, 99)) == [1, 2, 3, 4, 0]

    def test_point_grid_degenerate_inputs(self):
        empty = kernels.PointGrid(np.empty(0), np.empty(0))
        assert kernels.points_in_windows_grid(
            empty, np.array([[0.0, 0.0, 1.0, 1.0]])
        )[0].size == 0
        assert kernels.knn_points_grid(
            empty, np.array([0.0]), np.array([0.0]), [3]
        )[0].size == 0
        # All points coincident: zero spans must not divide by zero.
        ones = np.ones(5)
        stacked = kernels.PointGrid(ones, ones)
        [rows] = kernels.knn_points_grid(
            stacked, np.array([1.0]), np.array([1.0]), [2]
        )
        assert list(rows) == [0, 1]


class TestOracle:
    def test_validate_knn_rejects_bad_answers(self):
        oracle = BruteForceOracle(
            public={"a": Point(0, 0), "b": Point(1, 0), "c": Point(5, 0)}
        )
        q = Point(0, 0)
        assert oracle.validate_knn(["a", "b"], q, 2)
        assert not oracle.validate_knn(["b", "a"], q, 2)      # not nearest-first
        assert not oracle.validate_knn(["a"], q, 2)           # wrong length
        assert not oracle.validate_knn(["a", "a"], q, 2)      # duplicate
        assert not oracle.validate_knn(["a", "c"], q, 2)      # skips b
        assert not oracle.validate_knn(["a", "x"], q, 2)      # unknown id

    def test_from_index_splits_tables(self):
        from repro.index import RTree

        index = RTree()
        index.insert("point", Rect(1, 1, 1, 1))
        index.insert("region", Rect(0, 0, 2, 2))
        oracle = BruteForceOracle.from_index(index)
        assert set(oracle.public) == {"point"}
        assert set(oracle.private) == {"point", "region"}


class TestFigure6aGoldenBatched:
    """The paper's Figure 6a numbers through the *batched* count path."""

    WINDOW = Rect(0, 0, 10, 10)
    REGIONS = {
        "D": Rect(1, 1, 3, 3),
        "C": Rect(20, 20, 22, 22),
        "A": Rect(-2, 0, 6, 4),
        "B": Rect(-5, 0, 5, 5),
        "E": Rect(5, -8, 10, 2),
        "F": Rect(6, 6, 14, 14),
    }
    GOLDEN = {"D": 1.0, "A": 0.75, "B": 0.5, "E": 0.2, "F": 0.25}

    def batched_answer(self, vectorize: bool):
        server = LocationServer(telemetry=Telemetry(enabled=False))
        for name, region in self.REGIONS.items():
            server.receive_region(name, region)
        [answer] = server.execute_batch(
            [PublicCountQuery(self.WINDOW)], vectorize=vectorize
        )
        return answer

    @pytest.mark.parametrize("vectorize", [True, False])
    def test_per_object_probabilities(self, vectorize):
        answer = self.batched_answer(vectorize)
        assert set(answer.probabilities) == set(self.GOLDEN)  # C excluded
        for name, probability in self.GOLDEN.items():
            assert answer.probabilities[name] == pytest.approx(probability)

    @pytest.mark.parametrize("vectorize", [True, False])
    def test_expected_and_interval(self, vectorize):
        answer = self.batched_answer(vectorize)
        assert answer.expected == pytest.approx(2.7)
        assert answer.interval == (1, 5)
