"""SLO specs and the rolling health monitor (repro.obs.slo)."""

import json

import pytest

from repro.obs import DEFAULT_SLOS, SLOMonitor, SLOSpec, Telemetry, load_slos
from repro.obs.events import (
    PLANNER_MEASURED,
    QUERY_COMPLETED,
    SLO_EVALUATED,
    SNAPSHOT_CAPTURED,
    SNAPSHOT_REUSED,
)
from repro.obs.slo import EXIT_SLO_VIOLATION, SLO_SCHEMA, HealthReport


def emit_cloak(obs, k=5, k_achieved=5, degraded=False):
    k_satisfied = k_achieved >= k
    obs.emit(
        "cloak.result",
        user="u",
        t=0.0,
        algo="test",
        k=k,
        k_achieved=k_achieved,
        min_area=0.0,
        max_area=None,
        area=4.0,
        k_satisfied=k_satisfied,
        area_satisfied=True,
        reused=False,
        degraded=degraded or not k_satisfied,
    )


class TestSLOSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SLOSpec("x", "latency_p42", 1.0, stage="s")

    def test_stage_required_iff_latency(self):
        with pytest.raises(ValueError, match="stage is required"):
            SLOSpec("x", "latency_p95", 1.0)
        with pytest.raises(ValueError, match="stage is required"):
            SLOSpec("x", "attainment_rate", 0.9, stage="anonymizer.cloak")

    def test_directions_and_units(self):
        latency = SLOSpec("l", "latency_p95", 5.0, stage="s")
        floor = SLOSpec("a", "attainment_rate", 0.9)
        assert (latency.direction, latency.unit) == ("<=", "ms")
        assert (floor.direction, floor.unit) == (">=", "rate")

    def test_round_trips_through_dict(self):
        spec = SLOSpec("l", "latency_p95", 5.0, stage="s", description="d")
        assert SLOSpec.from_dict(spec.to_dict()) == spec

    def test_load_slos_from_json_file(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text(json.dumps([spec.to_dict() for spec in DEFAULT_SLOS]))
        assert load_slos(str(path)) == DEFAULT_SLOS

    def test_load_slos_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x"}')
        with pytest.raises(ValueError, match="expected a JSON list"):
            load_slos(str(path))


class TestEvaluation:
    def test_attainment_floor_pass_and_fail(self):
        spec = SLOSpec("attainment", "attainment_rate", 0.8)
        obs = Telemetry()
        for _ in range(8):
            emit_cloak(obs)
        emit_cloak(obs, k=10, k_achieved=2)
        report = SLOMonitor([spec]).evaluate(
            snapshot=obs.snapshot(), events=obs.events.events()
        )
        assert report.healthy and report.results[0].measured == 8 / 9

        obs2 = Telemetry()
        emit_cloak(obs2)
        emit_cloak(obs2, k=10, k_achieved=2)
        report2 = SLOMonitor([spec]).evaluate(
            snapshot=obs2.snapshot(), events=obs2.events.events()
        )
        assert not report2.healthy
        assert report2.exit_code == EXIT_SLO_VIOLATION
        assert report2.violated[0].spec.name == "attainment"

    def test_no_evidence_passes_vacuously(self):
        report = SLOMonitor(DEFAULT_SLOS).evaluate(snapshot={}, events=[])
        assert report.healthy
        assert all(result.measured is None for result in report.results)
        assert all("no evidence" in result.detail for result in report.results)

    def test_latency_spec_reads_stage_p95(self):
        spec = SLOSpec("cloak", "latency_p95", 10.0, stage="anonymizer.cloak")
        snapshot = {
            "stages": {"anonymizer.cloak": {"count": 4, "p95_ms": 25.0}}
        }
        report = SLOMonitor([spec]).evaluate(snapshot=snapshot, events=[])
        assert not report.healthy
        assert report.results[0].measured == 25.0

    def test_snapshot_reuse_rate_over_window(self):
        spec = SLOSpec("reuse", "snapshot_reuse_rate", 0.5)
        obs = Telemetry()
        obs.emit(SNAPSHOT_CAPTURED, objects=10)
        obs.emit(SNAPSHOT_REUSED, objects=10)
        obs.emit(SNAPSHOT_REUSED, objects=10)
        report = SLOMonitor([spec]).evaluate(
            snapshot=obs.snapshot(), events=obs.events.events()
        )
        assert report.results[0].measured == pytest.approx(2 / 3)
        assert report.healthy

    def test_mispredict_ratio_uses_folded_median(self):
        spec = SLOSpec("plan", "mispredict_ratio", 4.0)
        obs = Telemetry()
        obs.emit(PLANNER_MEASURED, query="public_range", backend="rtree",
                 route="scalar", seconds=1e-3, est_seconds=1e-5, n=1)
        report = SLOMonitor([spec]).evaluate(
            snapshot=obs.snapshot(), events=obs.events.events()
        )
        assert report.results[0].measured == pytest.approx(100.0)
        assert not report.healthy

    def test_query_accuracy_weighted_by_count(self):
        spec = SLOSpec("acc", "query_accuracy", 0.9)
        obs = Telemetry()
        for correct in (True, True, True, False):
            obs.emit(QUERY_COMPLETED, query="private_range", overhead=2.0,
                     correct=correct)
        report = SLOMonitor([spec]).evaluate(
            snapshot=obs.snapshot(), events=obs.events.events()
        )
        assert report.results[0].measured == 0.75
        assert not report.healthy

    def test_rolling_window_forgets_old_failures(self):
        spec = SLOSpec("attainment", "attainment_rate", 0.9)
        obs = Telemetry()
        emit_cloak(obs, k=10, k_achieved=2)  # old failure
        for _ in range(5):
            emit_cloak(obs)  # recovery
        monitor = SLOMonitor([spec], window=5)
        report = monitor.evaluate(
            snapshot=obs.snapshot(), events=obs.events.events()
        )
        assert report.healthy, "window should only see the recovered tail"
        assert report.window == 5


class TestVerdictTelemetry:
    def test_gauges_and_event_published(self):
        obs = Telemetry()
        emit_cloak(obs)
        monitor = SLOMonitor(
            [SLOSpec("attainment", "attainment_rate", 0.5)]
        )
        monitor.evaluate(
            snapshot=obs.snapshot(),
            events=list(obs.events.events()),
            telemetry=obs,
        )
        gauges = obs.snapshot()["gauges"]
        assert gauges["slo.ok{slo=attainment}"] == 1.0
        assert gauges["slo.value{slo=attainment}"] == 1.0
        evaluated = list(obs.events.events(SLO_EVALUATED))
        assert len(evaluated) == 1
        assert evaluated[0].attrs["healthy"] is True


class TestHealthReport:
    def _report(self):
        obs = Telemetry()
        emit_cloak(obs)
        return SLOMonitor(DEFAULT_SLOS).evaluate(
            snapshot=obs.snapshot(), events=obs.events.events()
        )

    def test_to_dict_is_json_serialisable(self):
        payload = self._report().to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["schema"] == SLO_SCHEMA
        assert payload["total"] == len(DEFAULT_SLOS)
        assert payload["exit_code"] == 0

    def test_render_shows_verdict_and_rows(self):
        text = self._report().render()
        assert "== SLO health ==" in text
        assert "HEALTHY" in text
        for spec in DEFAULT_SLOS:
            assert spec.name in text

    def test_render_flags_failures(self):
        spec = SLOSpec("attainment", "attainment_rate", 0.99)
        obs = Telemetry()
        emit_cloak(obs, k=10, k_achieved=2)
        report = SLOMonitor([spec]).evaluate(
            snapshot=obs.snapshot(), events=obs.events.events()
        )
        assert "UNHEALTHY" in report.render()
        assert "FAIL attainment" in report.render()

    def test_empty_specs_render(self):
        assert "(no SLO specs)" in HealthReport().render()
