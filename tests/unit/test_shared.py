"""Unit tests for shared batch execution (Section 5.3)."""

import pytest

from repro.cloaking.grid_cloak import GridCloaker
from repro.cloaking.hilbert import HilbertCloaker
from repro.cloaking.mbr import MBRCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.cloaking.shared import BatchOutcome, CloakRequest, cloak_all, cloak_batch
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)
REQ = PrivacyRequirement(k=10)


def load(cls, points, **kwargs):
    cloaker = cls(BOUNDS, **kwargs)
    for i, p in enumerate(points):
        cloaker.add_user(i, p)
    return cloaker


class TestCloakBatch:
    def test_all_requests_answered(self, uniform_points_500):
        cloaker = load(PyramidCloaker, uniform_points_500, height=4)
        requests = [CloakRequest(i, REQ) for i in range(100)]
        outcome = cloak_batch(cloaker, requests)
        assert set(outcome.results) == set(range(100))

    def test_shared_results_match_individual(self, clustered_points_500):
        batch_cloaker = load(PyramidCloaker, clustered_points_500, height=4)
        solo_cloaker = load(PyramidCloaker, clustered_points_500, height=4)
        outcome = cloak_all(batch_cloaker, REQ)
        for uid in range(500):
            assert (
                outcome.results[uid].region
                == solo_cloaker.cloak(uid, REQ).region
            )

    def test_sharing_happens_in_dense_population(self, clustered_points_500):
        cloaker = load(PyramidCloaker, clustered_points_500, height=4)
        outcome = cloak_all(cloaker, REQ)
        assert outcome.shared > 0
        assert outcome.computed + outcome.shared == 500
        assert 0.0 < outcome.sharing_ratio < 1.0

    def test_shared_count_lower_than_requests(self, clustered_points_500):
        cloaker = load(GridCloaker, clustered_points_500, cols=16)
        outcome = cloak_all(cloaker, REQ)
        assert cloaker.stats.cloaks == outcome.computed < 500

    def test_data_dependent_never_shares(self, clustered_points_500):
        cloaker = load(MBRCloaker, clustered_points_500)
        outcome = cloak_all(cloaker, REQ)
        assert outcome.shared == 0
        assert outcome.sharing_ratio == 0.0

    def test_mixed_requirements_not_shared_across(self, clustered_points_500):
        cloaker = load(PyramidCloaker, clustered_points_500, height=4)
        requests = [
            CloakRequest(i, PrivacyRequirement(k=5 if i % 2 else 50))
            for i in range(100)
        ]
        outcome = cloak_batch(cloaker, requests)
        for request in requests:
            result = outcome.results[request.user_id]
            assert result.user_count >= request.requirement.k

    def test_every_shared_region_contains_its_user(self, clustered_points_500):
        cloaker = load(PyramidCloaker, clustered_points_500, height=4)
        outcome = cloak_all(cloaker, REQ)
        for uid, result in outcome.results.items():
            assert result.region.contains_point(cloaker.location_of(uid))

    def test_hilbert_sharing_is_by_bucket(self, uniform_points_500):
        cloaker = load(HilbertCloaker, uniform_points_500)
        outcome = cloak_all(cloaker, REQ)
        # Every bucket of >= 10 users computes once and shares the rest.
        assert outcome.computed == len(
            {frozenset(cloaker.bucket_of(uid, REQ.k)) for uid in range(500)}
        )
        for uid, result in outcome.results.items():
            assert result.region.contains_point(cloaker.location_of(uid))

    def test_empty_batch(self, uniform_points_500):
        cloaker = load(PyramidCloaker, uniform_points_500, height=4)
        outcome = cloak_batch(cloaker, [])
        assert outcome.results == {}
        assert outcome.sharing_ratio == 0.0


class TestBatchOutcome:
    def test_sharing_ratio_empty(self):
        assert BatchOutcome().sharing_ratio == 0.0

    def test_sharing_ratio(self):
        outcome = BatchOutcome(computed=3, shared=7)
        assert outcome.sharing_ratio == pytest.approx(0.7)
