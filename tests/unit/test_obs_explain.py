"""EXPLAIN plan trees (repro.obs.explain) across every query path."""

import json

import pytest

from repro.core.server import LocationServer
from repro.core.stores import PublicStore
from repro.engine import PublicNNQuery, PublicRangeQuery
from repro.engine.queries import PrivateNNQuery, PrivateRangeQuery, PublicCountQuery
from repro.geometry import Point, Rect
from repro.obs import PlanNode, QueryExplainer, Telemetry, plan_to_json, render_plan
from repro.obs.explain import explain_figure_6a


def make_server(n=30) -> LocationServer:
    server = LocationServer(telemetry=Telemetry(enabled=False))
    server.public = PublicStore.from_points(
        {i: Point((i * 7) % 100, (i * 13) % 100) for i in range(n)}
    )
    for i in range(6):
        server.receive_region(f"r{i}", Rect(i * 10, i * 10, i * 10 + 8, i * 10 + 8))
    return server


class TestPlanNode:
    def test_add_and_find(self):
        root = PlanNode("root")
        child = root.add("index.range_query", node_visits=3)
        child.add("leaf")
        assert root.find("leaf")[0].op == "leaf"
        assert root.find("index.range_query")[0].detail["node_visits"] == 3
        assert root.find("missing") == []

    def test_to_dict_nests_children(self):
        root = PlanNode("root", {"a": 1})
        root.add("child")
        d = root.to_dict()
        assert d["op"] == "root" and d["detail"] == {"a": 1}
        assert d["children"][0]["op"] == "child"

    def test_leaves(self):
        root = PlanNode("root")
        root.add("a").add("a1")
        root.add("b")
        assert [n.op for n in root.leaves()] == ["a1", "b"]


class TestExporters:
    def test_plan_to_json_round_trips(self):
        root = PlanNode("root", {"n": 2})
        root.add("child", visits=5)
        parsed = json.loads(plan_to_json(root))
        assert parsed["children"][0]["detail"]["visits"] == 5

    def test_render_plan_ascii_tree(self):
        root = PlanNode("root", {"n": 2})
        root.add("first")
        root.add("last", k=1)
        text = render_plan(root)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert "├─ first" in lines[1]
        assert "└─ last  k=1" in lines[2]


class TestFigure6a:
    def test_leaf_probabilities_match_the_paper(self):
        plan = explain_figure_6a()
        leaves = plan.find("region.probability")
        assert [n.detail["probability"] for n in leaves] == [1.0, 0.75, 0.5, 0.2, 0.25]
        assert plan.detail["expected"] == pytest.approx(2.7)
        assert plan.detail["interval"] == [1, 5]

    def test_rendered_plan_carries_the_worked_example(self):
        text = render_plan(explain_figure_6a())
        assert "expected=2.7" in text
        assert "probability=0.75" in text


class TestCountersMatchIndexWork:
    """EXPLAIN executes the real query once: its counter deltas are exact."""

    @pytest.mark.parametrize(
        "run",
        [
            lambda e: e.explain_public_range(Rect(10, 10, 60, 60)),
            lambda e: e.explain_public_knn(Point(50, 50), k=3),
            lambda e: e.explain_private_range(Rect(20, 20, 40, 40), 10.0),
            lambda e: e.explain_private_nn(Rect(20, 20, 40, 40)),
            lambda e: e.explain_private_knn(Rect(20, 20, 40, 40), k=3),
        ],
    )
    def test_public_store_deltas_equal_totals(self, run):
        server = make_server()
        counters = server.public.index_counters
        assert counters.snapshot()["node_visits"] == 0  # fresh server
        plan = run(QueryExplainer(server))
        index_nodes = (
            plan.find("index.range_query")
            + plan.find("index.nearest")
            + plan.find("index.nearest_iter")
        )
        measured = index_nodes[0].detail
        totals = counters.snapshot()
        for name in ("node_visits", "leaf_scans", "distance_computations"):
            assert measured[name] == totals[name]

    def test_private_store_delta_for_count(self):
        server = make_server()
        plan = QueryExplainer(server).explain_public_count(Rect(0, 0, 50, 50))
        measured = plan.find("index.range_query")[0].detail
        assert measured["node_visits"] == server.private.index_counters.snapshot()["node_visits"]
        assert measured["range_queries"] == 1


class TestQueryPaths:
    def test_public_range_plan(self):
        plan = QueryExplainer(make_server()).explain_public_range(Rect(0, 0, 50, 50))
        assert plan.op == "public_range"
        assert plan.detail["matched"] >= 1
        assert plan.find("index.range_query")

    def test_public_count_leaves_in_insertion_order(self):
        server = make_server()
        plan = QueryExplainer(server).explain_public_count(Rect(0, 0, 100, 100))
        leaf_ids = [n.detail["object"] for n in plan.find("region.probability")]
        store_order = [oid for oid, _ in server.private.items() if oid in leaf_ids]
        assert leaf_ids == store_order

    def test_public_nn_plan_has_pruning_bound(self):
        plan = QueryExplainer(make_server()).explain_public_nn(Point(30, 30), samples=64)
        assert plan.find("pruning.bound")
        assert plan.find("estimate.monte_carlo")[0].detail["samples"] == 64

    def test_private_range_methods_differ_in_filter(self):
        explainer = QueryExplainer(make_server())
        region = Rect(20, 20, 40, 40)
        exact = explainer.explain_private_range(region, 10.0, method="exact")
        mbr = explainer.explain_private_range(region, 10.0, method="mbr")
        assert exact.find("filter.exact") and not exact.find("filter.mbr")
        assert mbr.find("filter.mbr") and not mbr.find("filter.exact")

    def test_private_nn_exact_adds_voronoi_clip(self):
        explainer = QueryExplainer(make_server())
        region = Rect(20, 20, 40, 40)
        assert explainer.explain_private_nn(region, "exact").find("voronoi.clip")
        assert not explainer.explain_private_nn(region, "filter").find("voronoi.clip")

    def test_private_nn_pruning_radius_from_result(self):
        server = make_server()
        plan = QueryExplainer(server).explain_private_nn(Rect(20, 20, 40, 40))
        m = plan.find("pruning.radius")[0].detail["m"]
        result = server.private_nn(Rect(20, 20, 40, 40))
        assert m == pytest.approx(result.pruning_radius)

    def test_dispatch_by_batch_query_value(self):
        explainer = QueryExplainer(make_server())
        assert explainer.explain(PublicRangeQuery(Rect(0, 0, 50, 50))).op == "public_range"
        assert explainer.explain(PublicNNQuery(Point(5, 5), k=2)).op == "public_knn"
        assert explainer.explain(PublicCountQuery(Rect(0, 0, 50, 50))).op == "public_count"
        assert explainer.explain(PrivateRangeQuery(Rect(1, 1, 9, 9), 5.0)).op == "private_range"
        assert explainer.explain(PrivateNNQuery(Rect(1, 1, 9, 9))).op == "private_nn"


class TestBatchPlans:
    BATCH = [
        PublicRangeQuery(Rect(0, 0, 50, 50)),
        PublicNNQuery(Point(50, 50), k=2),
        PublicCountQuery(Rect(0, 0, 50, 50)),
        PrivateNNQuery(Rect(20, 20, 40, 40)),
    ]

    def test_first_batch_captures_then_reuses_snapshot(self):
        explainer = QueryExplainer(make_server())
        first = explainer.explain_batch(self.BATCH)
        second = explainer.explain_batch(self.BATCH)
        assert first.find("snapshot")[0].detail["result"] == "captured"
        assert second.find("snapshot")[0].detail["result"] == "reused"

    def test_kernel_vs_scalar_paths(self):
        plan = QueryExplainer(make_server()).explain_batch(self.BATCH)
        by_op = {n.op: n.detail for n in plan.children}
        assert by_op["engine.public_range"]["kernel"] == "points_in_windows_grid"
        assert by_op["engine.public_nn"]["path"] == "vectorized"
        assert by_op["engine.private_nn"]["path"] == "scalar"

    def test_vectorize_false_forces_scalar_everywhere(self):
        plan = QueryExplainer(make_server()).explain_batch(self.BATCH, vectorize=False)
        for node in plan.children:
            if node.op.startswith("engine."):
                assert node.detail["path"] == "scalar"

    def test_tie_break_policies_reported(self):
        plan = QueryExplainer(make_server()).explain_batch(self.BATCH)
        nn = [n for n in plan.children if n.op == "engine.public_nn"][0]
        assert nn.detail["tie_break"] == "distance, then snapshot rank"
