"""Unit tests for span tracing (repro.obs.trace) and the Telemetry facade."""

import time

from repro.obs import SPAN_METRIC, Telemetry
from repro.obs.trace import Tracer, _NOOP_SPAN


class TestTracer:
    def test_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("work"):
            time.sleep(0.001)
        (record,) = tracer.spans()
        assert record.name == "work"
        assert record.duration_ms >= 1.0
        assert record.depth == 0
        assert record.path == "work"

    def test_nested_spans_build_paths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        records = list(tracer.spans())
        # Children complete (and record) before their parents.
        assert [r.name for r in records] == ["inner", "outer"]
        inner, outer = records
        assert inner.path == "outer/inner"
        assert inner.depth == 1
        assert outer.depth == 0

    def test_span_durations_feed_histogram(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("stage"):
                pass
        hist = tracer.registry.histogram(SPAN_METRIC, span="stage")
        assert hist.count == 3

    def test_attrs_are_kept(self):
        tracer = Tracer()
        with tracer.span("cloak", algo="pyramid") as s:
            s.annotate(users=7)
        (record,) = tracer.spans()
        assert record.attrs == {"algo": "pyramid", "users": 7}

    def test_disabled_returns_shared_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", big="attr")
        assert span is _NOOP_SPAN
        with span:
            pass
        assert list(tracer.spans()) == []
        assert tracer.registry.snapshot()["histograms"] == {}

    def test_exception_still_records_and_propagates(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        (record,) = tracer.spans()
        assert record.name == "boom"
        assert tracer._stack == []

    def test_ring_buffer_bounded(self):
        tracer = Tracer(keep=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.spans()] == ["s6", "s7", "s8", "s9"]


class TestTelemetry:
    def test_enable_disable_round_trip(self):
        obs = Telemetry()
        assert obs.enabled
        obs.disable()
        assert obs.span("x") is _NOOP_SPAN
        obs.enable()
        with obs.span("x"):
            pass
        assert obs.stage_latencies()["x"]["count"] == 1

    def test_counters_work_even_when_tracing_disabled(self):
        obs = Telemetry(enabled=False)
        obs.count("events", kind="a")
        assert obs.snapshot()["counters"]["events{kind=a}"] == 1

    def test_snapshot_separates_stages_from_value_histograms(self):
        obs = Telemetry()
        with obs.span("stage.one"):
            pass
        obs.observe("candidates", 12, query="nn")
        snap = obs.snapshot()
        assert "stage.one" in snap["stages"]
        assert "candidates{query=nn}" in snap["histograms"]
        assert not any(k.startswith(SPAN_METRIC) for k in snap["histograms"])

    def test_stage_latency_fields(self):
        obs = Telemetry()
        with obs.span("s"):
            pass
        summary = obs.stage_latencies()["s"]
        assert set(summary) == {
            "count", "total_ms", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"
        }

    def test_reset_clears_all(self):
        obs = Telemetry()
        with obs.span("s"):
            pass
        obs.count("c")
        obs.reset()
        snap = obs.snapshot()
        assert snap["stages"] == {}
        assert snap["counters"] == {}
