"""Unit tests for the mobility substrate."""

import numpy as np
import pytest

from repro.core.profiles import PrivacyProfile
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.network import (
    NetworkMobilityModel,
    manhattan_network,
    random_geometric_network,
)
from repro.mobility.population import (
    ClusterSpec,
    clustered_population,
    hotspot_population,
    population_from_clusters,
    uniform_population,
)
from repro.mobility.random_waypoint import RandomWaypointModel
from repro.mobility.trace import Trace, TraceEvent, record_trace
from repro.mobility.users import MobileUser, UserMode

BOUNDS = Rect(0, 0, 100, 100)


class TestUserModes:
    def test_mode_visibility(self):
        assert not UserMode.PASSIVE.shares_location
        assert UserMode.ACTIVE.shares_location
        assert UserMode.QUERY.shares_location

    def test_user_defaults(self):
        user = MobileUser("u1", Point(1, 2))
        assert user.mode is UserMode.ACTIVE
        assert user.is_visible
        assert user.profile == PrivacyProfile()

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            MobileUser("u", Point(0, 0), speed=-1.0)


class TestPopulations:
    def test_uniform_population(self, rng):
        pts = uniform_population(BOUNDS, 300, rng)
        assert len(pts) == 300
        assert all(BOUNDS.contains_point(p) for p in pts)

    def test_clustered_population_in_bounds(self, rng):
        pts = clustered_population(BOUNDS, 500, rng, n_clusters=4)
        assert len(pts) == 500
        assert all(BOUNDS.contains_point(p) for p in pts)

    def test_clustered_is_denser_than_uniform(self, rng):
        pts = clustered_population(
            BOUNDS, 1000, rng, n_clusters=3, background_fraction=0.1
        )
        # Measure max local density via a coarse histogram.
        grid = np.zeros((10, 10))
        for p in pts:
            grid[min(int(p.x / 10), 9), min(int(p.y / 10), 9)] += 1
        assert grid.max() > 3 * 10  # >3x the uniform per-cell expectation

    def test_hotspot_population(self, rng):
        pts = hotspot_population(BOUNDS, 1000, rng, hotspot_fraction=0.8)
        center = BOUNDS.center
        near = sum(1 for p in pts if p.distance_to(center) < 10)
        assert near >= 700

    def test_cluster_spec_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(Point(0, 0), sigma=-1, weight=1)
        with pytest.raises(ValueError):
            ClusterSpec(Point(0, 0), sigma=1, weight=-1)

    def test_population_from_clusters_exact_count(self, rng):
        specs = [
            ClusterSpec(Point(20, 20), 2.0, 0.7),
            ClusterSpec(Point(80, 80), 2.0, 0.3),
        ]
        pts = population_from_clusters(BOUNDS, 777, rng, specs, 0.25)
        assert len(pts) == 777

    def test_invalid_population_args(self, rng):
        with pytest.raises(ValueError):
            clustered_population(BOUNDS, 10, rng, background_fraction=1.5)
        with pytest.raises(ValueError):
            clustered_population(BOUNDS, 10, rng, n_clusters=0)
        with pytest.raises(ValueError):
            population_from_clusters(
                BOUNDS, 10, rng, [ClusterSpec(Point(0, 0), 1, 0.0)]
            )


class TestRandomWaypoint:
    def test_users_stay_in_bounds(self, rng):
        model = RandomWaypointModel(BOUNDS, rng)
        for i in range(20):
            model.add_user(i, Point(50, 50))
        for _ in range(50):
            positions = model.step(2.0)
            assert all(BOUNDS.contains_point(p) for p in positions.values())

    def test_movement_bounded_by_speed(self, rng):
        model = RandomWaypointModel(BOUNDS, rng, speed_range=(1.0, 1.0))
        model.add_user("u", Point(50, 50))
        previous = Point(50, 50)
        for _ in range(30):
            current = model.step(1.0)["u"]
            assert previous.distance_to(current) <= 1.0 + 1e-9
            previous = current

    def test_zero_dt_keeps_positions(self, rng):
        model = RandomWaypointModel(BOUNDS, rng)
        model.add_user("u", Point(10, 10))
        assert model.step(0.0)["u"] == Point(10, 10)

    def test_users_eventually_move(self, rng):
        model = RandomWaypointModel(BOUNDS, rng, speed_range=(1.0, 2.0))
        model.add_user("u", Point(50, 50))
        model.step(5.0)
        assert model.position_of("u") != Point(50, 50)

    def test_pausing_users_can_stand_still(self, rng):
        model = RandomWaypointModel(
            BOUNDS, rng, speed_range=(100.0, 100.0), pause_range=(10.0, 10.0)
        )
        model.add_user("u", Point(50, 50))
        # After reaching the first waypoint the user pauses; eventually a
        # step returns the same position twice.
        seen_pause = False
        last = model.position_of("u")
        for _ in range(50):
            current = model.step(0.5)["u"]
            if current == last:
                seen_pause = True
                break
            last = current
        assert seen_pause

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            RandomWaypointModel(BOUNDS, rng, speed_range=(2.0, 1.0))
        with pytest.raises(ValueError):
            RandomWaypointModel(BOUNDS, rng, pause_range=(-1.0, 0.0))
        model = RandomWaypointModel(BOUNDS, rng)
        model.add_user("u", Point(0, 0))
        with pytest.raises(ValueError):
            model.add_user("u", Point(1, 1))
        with pytest.raises(ValueError):
            model.add_user("v", Point(-5, 0))
        with pytest.raises(ValueError):
            model.step(-1.0)

    def test_remove_user(self, rng):
        model = RandomWaypointModel(BOUNDS, rng)
        model.add_user("u", Point(0, 0))
        model.remove_user("u")
        assert len(model) == 0


class TestNetworks:
    def test_manhattan_network_shape(self):
        graph = manhattan_network(BOUNDS, blocks=4)
        assert graph.number_of_nodes() == 25
        assert graph.number_of_edges() == 2 * 4 * 5

    def test_manhattan_positions_span_bounds(self):
        graph = manhattan_network(BOUNDS, blocks=2)
        positions = [data["pos"] for _, data in graph.nodes(data=True)]
        assert Point(0, 0) in positions
        assert Point(100, 100) in positions

    def test_random_geometric_connected(self, rng):
        graph = random_geometric_network(BOUNDS, 60, 0.15, rng)
        import networkx as nx

        assert nx.is_connected(graph)
        assert graph.number_of_nodes() == 60

    def test_invalid_networks(self, rng):
        with pytest.raises(ValueError):
            manhattan_network(BOUNDS, blocks=0)
        with pytest.raises(ValueError):
            random_geometric_network(BOUNDS, 1, 0.1, rng)


class TestNetworkMobility:
    @pytest.fixture
    def model(self, rng):
        graph = manhattan_network(BOUNDS, blocks=5)
        return NetworkMobilityModel(graph, rng, speed_range=(5.0, 5.0))

    def test_users_on_network_edges(self, model):
        model.add_user("u")
        for _ in range(40):
            p = model.step(1.0)["u"]
            # On a Manhattan grid, at least one coordinate sits on a street.
            on_street = any(
                abs(p.x - x) < 1e-6 or abs(p.y - x) < 1e-6
                for x in [0, 20, 40, 60, 80, 100]
            )
            assert on_street

    def test_start_node_respected(self, model):
        start = (0, 0)
        p = model.add_user("u", start_node=start)
        assert p == model.node_position(start)

    def test_duplicate_user_raises(self, model):
        model.add_user("u")
        with pytest.raises(ValueError):
            model.add_user("u")

    def test_movement_progresses(self, model):
        model.add_user("u", start_node=(0, 0))
        start = model.position_of("u")
        model.step(3.0)
        assert model.position_of("u") != start

    def test_disconnected_graph_rejected(self, rng):
        import networkx as nx

        graph = nx.Graph()
        graph.add_node(0, pos=Point(0, 0))
        graph.add_node(1, pos=Point(1, 1))
        with pytest.raises(ValueError):
            NetworkMobilityModel(graph, rng)


class TestTrace:
    def test_ordering_enforced(self):
        trace = Trace()
        trace.append(TraceEvent(1.0, "u", Point(0, 0)))
        with pytest.raises(ValueError):
            trace.append(TraceEvent(0.5, "u", Point(1, 1)))

    def test_record_step_and_metadata(self):
        trace = Trace()
        trace.record_step(0.0, {"a": Point(0, 0), "b": Point(1, 1)})
        trace.record_step(1.0, {"a": Point(2, 2)})
        assert len(trace) == 3
        assert trace.users == {"a", "b"}
        assert trace.duration == 1.0

    def test_replay_order(self):
        trace = Trace(
            [
                TraceEvent(0.0, "a", Point(0, 0)),
                TraceEvent(1.0, "a", Point(1, 1)),
            ]
        )
        seen = []
        count = trace.replay(lambda e: seen.append(e.t))
        assert count == 2
        assert seen == [0.0, 1.0]

    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace(
            [
                TraceEvent(0.0, "a", Point(0.5, 1.25)),
                TraceEvent(2.0, "b", Point(3.125, 4.0)),
            ]
        )
        path = tmp_path / "trace.tsv"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == 2
        assert loaded[0].location == Point(0.5, 1.25)
        assert loaded[1].user_id == "b"

    def test_load_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1.0\tonly-two-fields\n")
        with pytest.raises(ValueError, match="expected 4"):
            Trace.load(path)

    def test_record_trace_from_model(self, rng):
        model = RandomWaypointModel(BOUNDS, rng)
        initial = {}
        for i in range(5):
            model.add_user(i, Point(50, 50))
            initial[i] = Point(50, 50)
        trace = record_trace(model, n_steps=4, dt=1.0, initial_positions=initial)
        assert len(trace) == 5 * 5  # initial + 4 steps
        assert trace.duration == 4.0

    def test_record_trace_invalid_args(self, rng):
        model = RandomWaypointModel(BOUNDS, rng)
        with pytest.raises(ValueError):
            record_trace(model, n_steps=-1, dt=1.0)
