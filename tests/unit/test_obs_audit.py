"""The PrivacyAuditor's attainment accounting (repro.obs.audit)."""

import json

from repro.obs import EVENT_KINDS, EventLog, PrivacyAuditor
from repro.obs.audit import AUDIT_IGNORED_KINDS, AUDITED_KINDS
from repro.obs.events import CLOAK_DEGRADED, CLOAK_RESULT, QUERY_COMPLETED


def emit_result(log, user="u1", k=5, k_achieved=5, min_area=0.0, area=10.0,
                max_area=None, degraded=None, reused=False):
    k_satisfied = k_achieved >= k
    area_satisfied = area >= min_area and (max_area is None or area <= max_area)
    return log.emit(
        CLOAK_RESULT,
        user=user,
        t=0.0,
        algo="test",
        k=k,
        k_achieved=k_achieved,
        min_area=min_area,
        max_area=max_area,
        area=area,
        k_satisfied=k_satisfied,
        area_satisfied=area_satisfied,
        reused=reused,
        degraded=(not (k_satisfied and area_satisfied))
        if degraded is None
        else degraded,
    )


class TestAttainment:
    def test_all_satisfied(self):
        log = EventLog()
        for user in ("a", "b", "a"):
            emit_result(log, user=user)
        report = PrivacyAuditor.from_log(log).report()
        totals = report["totals"]
        assert totals["cloaks"] == 3
        assert totals["fully_attained"] == 3
        assert totals["attainment_rate"] == 1.0
        assert totals["undeclared_violations"] == 0
        assert report["users"]["a"]["cloaks"] == 2

    def test_declared_degradation_is_not_a_violation(self):
        log = EventLog()
        emit_result(log, k=10, k_achieved=4)  # degraded=True by construction
        auditor = PrivacyAuditor.from_log(log)
        totals = auditor.report()["totals"]
        assert totals["fully_attained"] == 0
        assert totals["degraded_declared"] == 1
        assert totals["undeclared_violations"] == 0
        assert auditor.violations() == []
        assert len(auditor.violations(declared=True)) == 1

    def test_undeclared_violation_is_flagged(self):
        log = EventLog()
        emit_result(log, k=10, k_achieved=4, degraded=False)  # lies
        auditor = PrivacyAuditor.from_log(log)
        assert auditor.report()["totals"]["undeclared_violations"] == 1
        assert len(auditor.violations()) == 1

    def test_separate_degraded_event_also_declares(self):
        log = EventLog()
        seq = emit_result(log, k=10, k_achieved=4, degraded=False)
        log.emit(CLOAK_DEGRADED, user="u1", result_seq=seq)
        auditor = PrivacyAuditor.from_log(log)
        assert auditor.violations() == []
        assert auditor.report()["totals"]["degraded_declared"] == 1

    def test_profiles_keyed_by_requirement(self):
        log = EventLog()
        emit_result(log, user="a", k=5)
        emit_result(log, user="b", k=20, k_achieved=20, min_area=2.0)
        profiles = PrivacyAuditor.from_log(log).report()["profiles"]
        assert set(profiles) == {"k=5,a_min=0,a_max=inf", "k=20,a_min=2,a_max=inf"}

    def test_area_and_k_summaries(self):
        log = EventLog()
        emit_result(log, area=4.0, k_achieved=5)
        emit_result(log, area=8.0, k_achieved=9)
        totals = PrivacyAuditor.from_log(log).report()["totals"]
        assert totals["mean_area"] == 6.0
        assert totals["min_area"] == 4.0
        assert totals["mean_k_achieved"] == 7.0
        assert totals["min_k_achieved"] == 5


class TestQueries:
    def test_query_stats_rolled_up(self):
        log = EventLog()
        log.emit(QUERY_COMPLETED, query="private_range", overhead=2.0, correct=True)
        log.emit(QUERY_COMPLETED, query="private_range", overhead=4.0, correct=True)
        log.emit(QUERY_COMPLETED, query="private_nn", overhead=3.0, correct=False)
        queries = PrivacyAuditor.from_log(log).report()["queries"]
        assert queries["private_range"]["count"] == 2
        assert queries["private_range"]["mean_overhead"] == 3.0
        assert queries["private_range"]["max_overhead"] == 4.0
        assert queries["private_range"]["accuracy"] == 1.0
        assert queries["private_nn"]["accuracy"] == 0.0


class TestIngestion:
    def test_from_jsonl(self, tmp_path):
        log = EventLog()
        emit_result(log, user="a")
        emit_result(log, user="b", k=9, k_achieved=2)
        path = tmp_path / "trail.jsonl"
        path.write_text(log.dump_jsonl())
        report = PrivacyAuditor.from_jsonl(str(path)).report()
        assert report["totals"]["cloaks"] == 2
        assert report["totals"]["degraded_declared"] == 1

    def test_report_is_json_serialisable(self):
        log = EventLog()
        emit_result(log)
        report = PrivacyAuditor.from_log(log).report()
        assert json.loads(json.dumps(report)) == report
        assert report["schema"] == "repro.obs.audit/1"

    def test_empty_log_reports_cleanly(self):
        report = PrivacyAuditor.from_log(EventLog()).report()
        assert report["totals"]["cloaks"] == 0
        assert report["totals"]["attainment_rate"] == 1.0


class TestKindFolding:
    def test_every_registered_kind_is_classified(self):
        # Adding an event kind without deciding whether the auditor
        # consumes or ignores it must fail here, not silently fold.
        assert AUDITED_KINDS | AUDIT_IGNORED_KINDS == frozenset(EVENT_KINDS)
        assert not AUDITED_KINDS & AUDIT_IGNORED_KINDS

    def test_observability_events_do_not_skew_the_audit(self):
        log = EventLog()
        emit_result(log)
        baseline = PrivacyAuditor.from_log(log).report()
        for kind in sorted(AUDIT_IGNORED_KINDS):
            log.emit(kind)
        report = PrivacyAuditor.from_log(log).report()
        assert report["totals"] == baseline["totals"]
        assert report["queries"] == baseline["queries"]
