"""Per-query work counters on every spatial index (repro.index.*).

Each index accumulates node visits, leaf scans and distance computations
locally during a query and flushes once at the end, so the counters cost
a handful of integer adds per query.
"""

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.index import IndexCounters
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.pyramid import PyramidGrid
from repro.index.quadtree import QuadTree
from repro.index.rtree import RTree

BOUNDS = Rect(0, 0, 100, 100)


FACTORIES = {
    "rtree": RTree,
    "grid": lambda: GridIndex(BOUNDS, cols=16),
    "quadtree": lambda: QuadTree(BOUNDS),
    "kdtree": KDTree,
    "pyramid": lambda: PyramidGrid(BOUNDS, height=5),
}


@pytest.fixture(params=list(FACTORIES), ids=list(FACTORIES))
def index(request):
    return FACTORIES[request.param]()


def _populated(index, n=60, seed=3):
    rng = np.random.default_rng(seed)
    for i in range(n):
        x, y = rng.uniform(0, 100, 2)
        index.insert_point(i, Point(float(x), float(y)))
    return index


class TestCountersDataclass:
    def test_snapshot_and_reset(self):
        counters = IndexCounters()
        counters.node_visits += 3
        counters.range_queries += 1
        snap = counters.snapshot()
        assert snap["node_visits"] == 3
        assert snap["range_queries"] == 1
        counters.reset()
        assert all(v == 0 for v in counters.snapshot().values())

    def test_lazy_creation_on_index(self):
        tree = RTree()
        assert isinstance(tree.counters, IndexCounters)
        assert tree.counters is tree.counters


class TestRangeInstrumentation:
    def test_range_query_counts_work(self, index):
        _populated(index)
        before = dict(index.counters.snapshot())
        index.range_query(Rect(10, 10, 60, 60))
        after = index.counters.snapshot()
        assert after["range_queries"] == before["range_queries"] + 1
        assert after["node_visits"] > before["node_visits"]

    def test_counts_accumulate_across_queries(self, index):
        _populated(index)
        index.range_query(Rect(0, 0, 50, 50))
        once = index.counters.snapshot()["node_visits"]
        index.range_query(Rect(0, 0, 50, 50))
        assert index.counters.snapshot()["node_visits"] == 2 * once
        assert index.counters.snapshot()["range_queries"] == 2


class TestNNInstrumentation:
    def test_nearest_counts_distance_computations(self, index):
        _populated(index)
        before = dict(index.counters.snapshot())
        result = index.nearest(Point(50, 50), k=3)
        assert len(result) == 3
        after = index.counters.snapshot()
        assert after["nn_queries"] == before["nn_queries"] + 1
        assert after["distance_computations"] > before["distance_computations"]


class TestInstrumentationDoesNotChangeAnswers:
    def test_results_identical_across_indexes(self):
        window = Rect(20, 20, 70, 70)
        answers = [
            sorted(_populated(make()).range_query(window))
            for make in FACTORIES.values()
        ]
        assert all(a == answers[0] for a in answers)
        assert answers[0]  # non-empty window
