"""Unit tests for the persistence layer."""

import pytest

from repro.core.persistence import (
    load_private_store,
    load_profiles,
    load_public_store,
    save_private_store,
    save_profiles,
    save_public_store,
)
from repro.core.profiles import PrivacyProfile, PrivacyRequirement, example_profile, hhmm
from repro.core.stores import PrivateStore, PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class TestPublicStoreRoundtrip:
    def test_roundtrip(self, tmp_path, uniform_points_500):
        store = PublicStore()
        for i, p in enumerate(uniform_points_500[:50]):
            store.add(f"poi-{i}", p)
        path = tmp_path / "public.tsv"
        assert save_public_store(store, path) == 50
        loaded = load_public_store(path)
        assert len(loaded) == 50
        for i, p in enumerate(uniform_points_500[:50]):
            assert loaded.point_of(f"poi-{i}") == p

    def test_loaded_store_is_queryable(self, tmp_path):
        store = PublicStore()
        store.add("a", Point(10, 10))
        store.add("b", Point(90, 90))
        path = tmp_path / "public.tsv"
        save_public_store(store, path)
        loaded = load_public_store(path)
        assert loaded.range_query(Rect(0, 0, 20, 20)) == ["a"]
        assert loaded.nearest(Point(80, 80), 1) == ["b"]

    def test_empty_store(self, tmp_path):
        path = tmp_path / "empty.tsv"
        assert save_public_store(PublicStore(), path) == 0
        assert len(load_public_store(path)) == 0

    def test_malformed_row_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only\ttwo\n")
        with pytest.raises(ValueError, match="expected 3"):
            load_public_store(path)


class TestPrivateStoreRoundtrip:
    def test_roundtrip_exact_floats(self, tmp_path):
        store = PrivateStore()
        store.set_region("u1", Rect(0.1, 0.2, 10.33333333333333, 20.5))
        store.set_region("u2", Rect.from_point(Point(5, 5)))
        path = tmp_path / "private.tsv"
        assert save_private_store(store, path) == 2
        loaded = load_private_store(path)
        assert loaded.region_of("u1") == Rect(0.1, 0.2, 10.33333333333333, 20.5)
        assert loaded.region_of("u2").area == 0.0
        assert sorted(loaded.overlapping(Rect(0, 0, 100, 100))) == ["u1", "u2"]


class TestProfileRoundtrip:
    def test_example_profile_roundtrips(self, tmp_path):
        profiles = {"alice": example_profile(), "bob": PrivacyProfile.always(k=7)}
        path = tmp_path / "profiles.tsv"
        assert save_profiles(profiles, path) == 4  # 3 rows + 1 row
        loaded = load_profiles(path)
        assert loaded["alice"].requirement_at(hhmm("18:00")).k == 100
        assert loaded["alice"].requirement_at(hhmm("03:00")).k == 1000
        assert loaded["alice"].requirement_at(hhmm("18:00")).max_area == 3.0
        assert loaded["bob"].requirement_at(0.0).k == 7

    def test_unbounded_max_area_roundtrips(self, tmp_path):
        profiles = {"u": PrivacyProfile.always(k=3, min_area=1.0)}
        path = tmp_path / "profiles.tsv"
        save_profiles(profiles, path)
        loaded = load_profiles(path)
        assert loaded["u"].requirement_at(0.0).max_area is None

    def test_empty_profile_becomes_no_privacy_row(self, tmp_path):
        profiles = {"open": PrivacyProfile()}
        path = tmp_path / "profiles.tsv"
        assert save_profiles(profiles, path) == 1
        loaded = load_profiles(path)
        assert not loaded["open"].requirement_at(12345.0).wants_privacy

    def test_requirement_fields_roundtrip(self, tmp_path):
        req = PrivacyRequirement(k=42, min_area=3.25, max_area=9.75)
        profiles = {"u": PrivacyProfile.always(req.k, req.min_area, req.max_area)}
        path = tmp_path / "profiles.tsv"
        save_profiles(profiles, path)
        got = load_profiles(path)["u"].requirement_at(0.0)
        assert (got.k, got.min_area, got.max_area) == (42, 3.25, 9.75)
