"""Checkpoint documents, atomic writes, and config round-trips.

``tests/fixtures/persist_checkpoint_mini.json`` pins the full
``repro.persist/1`` checkpoint document for a small deterministic
system; a drift in any serialised field fails here before it can make
a stored checkpoint unreadable.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cloaking.grid_cloak import GridCloaker
from repro.cloaking.hilbert import HilbertCloaker
from repro.cloaking.incremental import IncrementalCloaker
from repro.cloaking.mbr import MBRCloaker
from repro.cloaking.naive import NaiveCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.cloaking.quadtree_cloak import QuadtreeCloaker
from repro.core.profiles import PrivacyProfile
from repro.core.system import PrivacySystem
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.users import MobileUser
from repro.obs import Telemetry
from repro.obs.events import PERSIST_CHECKPOINT
from repro.persist import (
    SCHEMA,
    CheckpointError,
    checkpoint_state,
    cloaker_config,
    cloaker_from_config,
    list_checkpoints,
    load_checkpoint,
    snapshot_from_state,
    snapshot_state,
    write_checkpoint,
    write_wal_meta,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "..", "fixtures")
BOUNDS = Rect(0.0, 0.0, 100.0, 100.0)

#: Top-level document keys, in the exact order checkpoint_state emits
#: them (insertion order is part of the wire format).
DOCUMENT_KEYS = [
    "schema",
    "wal_seq",
    "clock",
    "bounds",
    "rotate_pseudonyms",
    "pseudonym_seq",
    "cloaker",
    "users",
    "registrations",
    "server",
    "stores",
    "cloaker_index",
    "engine_snapshot",
    "ledger",
]


def _mini_system() -> PrivacySystem:
    """The deterministic system the golden fixture was generated from."""
    system = PrivacySystem(
        BOUNDS, GridCloaker(BOUNDS, cols=4, rows=4), telemetry=Telemetry()
    )
    system.add_poi("p0", Point(10.0, 10.0))
    system.add_poi("p1", Point(60.0, 70.0))
    for i, (x, y) in enumerate([(20.0, 20.0), (22.0, 24.0), (70.0, 75.0)]):
        system.add_user(
            MobileUser(f"u{i}", Point(x, y), PrivacyProfile.always(k=2, min_area=4.0))
        )
    system.publish_all()
    system.server.register_count_monitor("m0", Rect(0.0, 0.0, 50.0, 50.0))
    return system


def _as_wire(state: dict) -> dict:
    """The document as it lands on disk (tuples become JSON arrays)."""
    return json.loads(json.dumps(state, default=str))


class TestCheckpointDocument:
    def test_matches_golden_fixture(self):
        path = os.path.join(FIXTURES, "persist_checkpoint_mini.json")
        with open(path, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        assert _as_wire(checkpoint_state(_mini_system())) == golden

    def test_key_order_is_pinned(self):
        state = checkpoint_state(_mini_system())
        assert list(state) == DOCUMENT_KEYS
        assert state["schema"] == SCHEMA

    def test_wal_seq_tracks_event_log(self):
        system = _mini_system()
        before = system.obs.events._seq
        assert checkpoint_state(system)["wal_seq"] == before
        system.apply_movement({"u0": Point(21.0, 21.0)})
        assert checkpoint_state(system)["wal_seq"] > before


class TestWriteCheckpoint:
    def test_writes_named_file_and_no_tmp_orphan(self, tmp_path):
        system = _mini_system()
        path = write_checkpoint(system, tmp_path)
        seq = system.obs.events._seq - 1  # the emit itself took one seq
        assert os.path.basename(path) == f"checkpoint-{seq:012d}.json"
        assert os.path.exists(path)
        assert not list(tmp_path.glob("*.tmp"))

    def test_emits_persist_checkpoint_event(self, tmp_path):
        system = _mini_system()
        path = write_checkpoint(system, tmp_path)
        events = list(system.obs.events.events(PERSIST_CHECKPOINT))
        assert len(events) == 1
        attrs = events[0].attrs
        assert attrs["file"] == os.path.basename(path)
        assert attrs["wal_seq"] == int(os.path.basename(path)[11:-5])
        assert attrs["bytes"] == os.path.getsize(path)
        assert attrs["seconds"] >= 0.0

    def test_round_trips_through_load(self, tmp_path):
        system = _mini_system()
        # Capture first: the write itself emits one event, moving _seq.
        state = _as_wire(checkpoint_state(system))
        path = write_checkpoint(system, tmp_path)
        assert load_checkpoint(path) == state


class TestLoadCheckpoint:
    def test_foreign_schema_rejected(self, tmp_path):
        path = tmp_path / "checkpoint-000000000001.json"
        path.write_text(json.dumps({"schema": "somebody.else/9", "wal_seq": 1}))
        with pytest.raises(CheckpointError, match="repro.persist/1"):
            load_checkpoint(path)

    def test_non_object_document_rejected(self, tmp_path):
        path = tmp_path / "checkpoint-000000000001.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_torn_json_raises_value_error(self, tmp_path):
        path = tmp_path / "checkpoint-000000000001.json"
        path.write_text('{"schema": "repro.persist/1", "wal_seq":')
        with pytest.raises(ValueError):
            load_checkpoint(path)


class TestListCheckpoints:
    def test_sorted_oldest_first_and_tmp_ignored(self, tmp_path):
        names = [
            "checkpoint-000000000042.json",
            "checkpoint-000000000007.json",
            "checkpoint-000000000100.json",
        ]
        for name in names:
            (tmp_path / name).write_text("{}")
        (tmp_path / "checkpoint-000000000999.json.tmp").write_text("{")
        (tmp_path / "wal.jsonl").write_text("")
        found = [p.name for p in list_checkpoints(tmp_path)]
        assert found == sorted(names)


CLOAKERS = {
    "pyramid": lambda: PyramidCloaker(BOUNDS, height=5),
    "pyramid_topdown": lambda: PyramidCloaker(
        BOUNDS, height=4, bottom_up=False, neighbor_merge=False
    ),
    "grid": lambda: GridCloaker(BOUNDS, cols=6, rows=3),
    "quadtree": lambda: QuadtreeCloaker(BOUNDS, capacity=3, max_depth=7),
    "hilbert": lambda: HilbertCloaker(BOUNDS, order=5),
    "naive": lambda: NaiveCloaker(BOUNDS, precision=0.5),
    "mbr": lambda: MBRCloaker(BOUNDS, pad_fraction=0.25),
    "incremental": lambda: IncrementalCloaker(
        PyramidCloaker(BOUNDS, height=4), max_reuses=7
    ),
}


class TestCloakerConfig:
    @pytest.mark.parametrize("name", sorted(CLOAKERS))
    def test_round_trip(self, name):
        original = CLOAKERS[name]()
        config = cloaker_config(original)
        assert config is not None
        rebuilt = cloaker_from_config(config)
        assert type(rebuilt) is type(original)
        # Construction parameters survive: serialising again is a no-op.
        assert cloaker_config(rebuilt) == config
        assert json.loads(json.dumps(config)) == config  # JSON-clean

    def test_unregistered_type_maps_to_none(self):
        assert cloaker_config(object()) is None

    def test_unknown_class_rejected(self):
        with pytest.raises(CheckpointError, match="unknown cloaker class"):
            cloaker_from_config({"class": "TimeMachineCloaker"})


class TestSnapshotState:
    def _cached_snapshot(self):
        from repro.core.server import LocationServer
        from repro.core.stores import PublicStore
        from repro.engine import PublicRangeQuery

        server = LocationServer(telemetry=Telemetry())
        server.public = PublicStore.from_points(
            {f"p{i}": Point(float(i * 10), float(i * 7)) for i in range(5)}
        )
        server.execute_batch([PublicRangeQuery(Rect(0.0, 0.0, 50.0, 50.0))])
        return server.engine._cached

    def test_round_trip_preserves_arrays_and_versions(self):
        snapshot = self._cached_snapshot()
        state = snapshot_state(snapshot)
        rebuilt = snapshot_from_state(state)
        assert rebuilt.public_version == snapshot.public_version
        assert rebuilt.private_version == snapshot.private_version
        assert rebuilt.public_ids == tuple(str(i) for i in snapshot.public_ids)
        assert rebuilt.public_xs.tolist() == snapshot.public_xs.tolist()
        assert rebuilt.public_ys.tolist() == snapshot.public_ys.tolist()
        assert rebuilt.private_bounds.shape == (len(snapshot.private_ids), 4)

    def test_rebuilt_arrays_are_frozen_and_ranks_recomputed(self):
        rebuilt = snapshot_from_state(snapshot_state(self._cached_snapshot()))
        assert not rebuilt.public_xs.flags.writeable
        assert not rebuilt.public_ys.flags.writeable
        assert not rebuilt.private_bounds.flags.writeable
        assert rebuilt.public_rank == {
            item: row for row, item in enumerate(rebuilt.public_ids)
        }


class TestWalMeta:
    def test_sidecar_records_construction_parameters(self, tmp_path):
        system = _mini_system()
        path = write_wal_meta(system, tmp_path)
        with open(path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        assert meta == {
            "schema": SCHEMA,
            "bounds": [0.0, 0.0, 100.0, 100.0],
            "rotate_pseudonyms": False,
            "cloaker": {
                "class": "GridCloaker",
                "bounds": [0.0, 0.0, 100.0, 100.0],
                "cols": 4,
                "rows": 4,
            },
        }
        assert not list(tmp_path.glob("*.tmp"))
