"""Unit tests for the privacy-aware LocationServer."""

import pytest

from repro.core.errors import QueryError, RegistrationError
from repro.core.server import LocationServer
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@pytest.fixture
def server(uniform_points_500):
    server = LocationServer()
    for i, p in enumerate(uniform_points_500[:100]):
        server.add_public_object(("poi", i), p)
    return server


class TestPublicData:
    def test_add_move_remove(self, server):
        server.add_public_object("car", Point(1, 1))
        server.move_public_object("car", Point(2, 2))
        assert server.public.point_of("car") == Point(2, 2)
        server.remove_public_object("car")
        assert "car" not in server.public

    def test_move_unknown_raises(self, server):
        with pytest.raises(RegistrationError):
            server.move_public_object("ghost", Point(0, 0))


class TestPrivateData:
    def test_receive_region(self, server):
        server.receive_region("anon-1", Rect(0, 0, 10, 10))
        assert server.private.region_of("anon-1") == Rect(0, 0, 10, 10)

    def test_refresh_region(self, server):
        server.receive_region("anon-1", Rect(0, 0, 10, 10))
        server.receive_region("anon-1", Rect(5, 5, 15, 15))
        assert server.private.region_of("anon-1") == Rect(5, 5, 15, 15)
        assert len(server.private) == 1

    def test_forget_region(self, server):
        server.receive_region("anon-1", Rect(0, 0, 10, 10))
        server.forget_region("anon-1")
        assert "anon-1" not in server.private


class TestQueries:
    def test_private_range(self, server, uniform_points_500):
        region = Rect(40, 40, 50, 50)
        result = server.private_range(region, radius=10.0)
        for c in result.candidates:
            assert server.public.point_of(c) is not None

    def test_private_nn(self, server):
        result = server.private_nn(Rect(40, 40, 50, 50))
        assert len(result.candidates) >= 1

    def test_public_count_and_naive(self, server):
        server.receive_region("a", Rect(0, 0, 10, 10))
        server.receive_region("b", Rect(5, 5, 25, 25))
        window = Rect(0, 0, 10, 10)
        answer = server.public_count(window)
        assert answer.expected == pytest.approx(1.0 + 25.0 / 400.0)
        assert server.public_count_naive(window) == 2

    def test_public_nn(self, server):
        server.receive_region("a", Rect(40, 40, 45, 45))
        server.receive_region("b", Rect(80, 80, 90, 90))
        result = server.public_nn(Point(42, 42))
        assert result.answer.top == "a"

    def test_public_over_public_range(self, server, uniform_points_500):
        window = Rect(10, 10, 50, 50)
        expected = sorted(
            ("poi", i)
            for i, p in enumerate(uniform_points_500[:100])
            if window.contains_point(p)
        )
        assert sorted(server.public_range_over_public(window)) == expected

    def test_public_over_public_nn(self, server, uniform_points_500):
        q = Point(50, 50)
        got = server.public_nn_over_public(q, k=3)
        brute = sorted(
            range(100), key=lambda i: uniform_points_500[i].distance_to(q)
        )[:3]
        assert set(got) == {("poi", i) for i in brute}

    def test_public_over_public_nn_invalid_k(self, server):
        with pytest.raises(QueryError):
            server.public_nn_over_public(Point(0, 0), k=0)

    def test_queries_served_counter(self, server):
        before = server.queries_served
        server.private_nn(Rect(0, 0, 10, 10))
        server.public_count(Rect(0, 0, 1, 1))
        assert server.queries_served == before + 2

    def test_stats_snapshot(self, server):
        server.receive_region("anon-1", Rect(0, 0, 5, 5))
        server.private_nn(Rect(0, 0, 10, 10))
        server.private_range(Rect(0, 0, 10, 10), 2.0)
        server.public_count(Rect(0, 0, 5, 5))
        server.register_count_monitor("m", Rect(0, 0, 1, 1))
        stats = server.stats()
        assert stats.public_objects == 100
        assert isinstance(stats.public_objects, int)
        assert stats.private_regions == 1
        assert stats.monitors == 1
        assert stats.region_updates == 1
        assert stats.queries_by_kind == {
            "private_nn": 1,
            "private_range": 1,
            "public_count": 1,
        }
        assert stats.queries_served == 3
        flat = stats.as_dict()
        assert flat["queries_private_nn"] == 1
        assert all(isinstance(v, int) for v in flat.values())


class TestMonitors:
    def test_monitor_seeded_and_maintained(self, server):
        server.receive_region("a", Rect(0, 0, 10, 10))
        monitor = server.register_count_monitor("m", Rect(0, 0, 20, 20))
        assert monitor.expected_count == pytest.approx(1.0)
        server.receive_region("b", Rect(0, 0, 5, 5))
        assert monitor.expected_count == pytest.approx(2.0)
        server.forget_region("a")
        assert monitor.expected_count == pytest.approx(1.0)

    def test_monitor_lookup_and_drop(self, server):
        server.register_count_monitor("m", Rect(0, 0, 1, 1))
        assert server.monitor("m") is not None
        server.drop_count_monitor("m")
        with pytest.raises(QueryError):
            server.monitor("m")

    def test_duplicate_monitor_raises(self, server):
        server.register_count_monitor("m", Rect(0, 0, 1, 1))
        with pytest.raises(QueryError):
            server.register_count_monitor("m", Rect(0, 0, 2, 2))

    def test_drop_unknown_raises(self, server):
        with pytest.raises(QueryError):
            server.drop_count_monitor("ghost")

    def test_monitor_matches_recompute_under_updates(self, server, rng):
        monitor = server.register_count_monitor("m", Rect(20, 20, 60, 60))
        for i in range(50):
            cx, cy = rng.uniform(0, 100, 2)
            server.receive_region(
                ("u", i), Rect.from_center(Point(float(cx), float(cy)), 8, 8).clipped(Rect(0,0,100,100))
            )
        for _ in range(100):
            i = int(rng.integers(50))
            cx, cy = rng.uniform(0, 100, 2)
            server.receive_region(
                ("u", i), Rect.from_center(Point(float(cx), float(cy)), 8, 8).clipped(Rect(0,0,100,100))
            )
        assert monitor.expected_count == pytest.approx(
            monitor.recompute(server.private).expected
        )
