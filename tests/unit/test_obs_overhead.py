"""Disabled tracing must be (close to) free on the query hot path.

The acceptance bar for the observability layer: wrapping a 10k-query
microloop in disabled-telemetry spans adds < 5 % over the same loop with
no telemetry calls at all.  The fast path is a single ``enabled`` check
returning a shared no-op span, so the real cost per query is three
attribute lookups and two no-op calls — far below the bar for any query
that does actual index work.
"""

import time

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.index.rtree import RTree
from repro.obs import Telemetry

QUERIES = 10_000
REPEATS = 5


@pytest.fixture(scope="module")
def workload():
    """An R-tree of 2000 points plus the 10k query windows to run.

    Each query does tens of microseconds of real index work, so the
    fixed ~hundreds-of-ns cost of a disabled span is well under the 5 %
    bar even on a noisy machine.
    """
    rng = np.random.default_rng(7)
    tree = RTree()
    for i in range(2000):
        x, y = rng.uniform(0, 100, 2)
        tree.insert_point(i, Point(float(x), float(y)))
    windows = []
    for _ in range(QUERIES):
        x, y = rng.uniform(0, 80, 2)
        windows.append(Rect(float(x), float(y), float(x) + 20.0, float(y) + 20.0))
    return tree, windows


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_disabled_tracing_overhead_under_5_percent(workload):
    """Per-query span cost must be < 5 % of the per-query work itself.

    Comparing two full end-to-end wall times head-to-head needs the
    clock to sit still to within 5 % for ~a second, which shared CI
    machines do not guarantee.  Measuring the two per-iteration costs
    separately (each best-of-N) and comparing them asserts the same
    bound with a ~6x noise margin: a disabled span costs hundreds of
    nanoseconds, a real query tens of microseconds.
    """
    tree, windows = workload
    obs = Telemetry(enabled=False)

    def queries():
        for window in windows:
            tree.range_query(window)

    def spans_only():
        for _ in range(QUERIES):
            with obs.span("query"):
                pass

    # Warm both paths (bytecode caches, lazy attribute creation).
    queries()
    spans_only()
    query_cost = min(_timed(queries) for _ in range(REPEATS)) / QUERIES
    span_cost = min(_timed(spans_only) for _ in range(REPEATS)) / QUERIES
    overhead = span_cost / query_cost
    assert overhead < 0.05, (
        f"disabled span costs {span_cost * 1e9:.0f}ns = "
        f"{overhead * 100:.2f}% of a {query_cost * 1e6:.1f}us query"
    )
    # And it really was dark: nothing recorded anywhere.
    assert list(obs.tracer.spans()) == []
    assert obs.snapshot()["stages"] == {}
