"""Unit tests for continuous private NN queries."""

import pytest

from repro.core.errors import QueryError
from repro.core.stores import PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.queries.continuous_nn import ContinuousPrivateNN
from repro.queries.private_nn import private_nn_query


@pytest.fixture
def store(uniform_points_500):
    s = PublicStore()
    for i, p in enumerate(uniform_points_500):
        s.add(i, p)
    return s


class TestBasicDeltas:
    def test_first_update_joins_all(self, store):
        query = ContinuousPrivateNN(store)
        delta = query.on_region_update(Rect(40, 40, 50, 50))
        assert delta.left == ()
        assert set(delta.joined) == query.candidates
        assert query.region == Rect(40, 40, 50, 50)

    def test_stationary_region_empty_delta(self, store):
        query = ContinuousPrivateNN(store)
        query.on_region_update(Rect(40, 40, 50, 50))
        assert query.on_region_update(Rect(40, 40, 50, 50)).is_empty

    def test_client_view_matches_snapshot(self, store):
        query = ContinuousPrivateNN(store)
        view: set = set()
        for region in [
            Rect(40, 40, 50, 50),
            Rect(45, 42, 55, 52),
            Rect(70, 70, 80, 80),
        ]:
            delta = query.on_region_update(region)
            view |= set(delta.joined)
            view -= set(delta.left)
            snapshot = private_nn_query(store, region, "filter")
            assert view == set(snapshot.candidates)

    def test_region_before_update_raises(self, store):
        with pytest.raises(QueryError):
            ContinuousPrivateNN(store).region

    def test_shipping_stats(self, store):
        query = ContinuousPrivateNN(store)
        d1 = query.on_region_update(Rect(40, 40, 50, 50))
        d2 = query.on_region_update(Rect(10, 10, 20, 20))
        assert query.deltas_sent == 2
        assert query.objects_shipped == d1.transmission_size + d2.transmission_size


class TestLazyShrink:
    def test_shrinking_region_reuses_candidates(self, store):
        query = ContinuousPrivateNN(store, lazy_shrink=True)
        query.on_region_update(Rect(30, 30, 60, 60))
        recomputes = query.recomputations
        delta = query.on_region_update(Rect(40, 40, 50, 50))
        assert delta.is_empty
        assert query.recomputations == recomputes

    def test_lazy_candidates_remain_sound(self, store, rng):
        from repro.geometry.sampling import uniform_points
        from repro.queries.private_nn import exact_nn_answer

        query = ContinuousPrivateNN(store, lazy_shrink=True)
        query.on_region_update(Rect(30, 30, 60, 60))
        small = Rect(40, 40, 50, 50)
        query.on_region_update(small)
        for p in uniform_points(small, 200, rng):
            assert exact_nn_answer(store, p) in query.candidates

    def test_growth_still_recomputes(self, store):
        query = ContinuousPrivateNN(store, lazy_shrink=True)
        query.on_region_update(Rect(40, 40, 50, 50))
        before = query.recomputations
        query.on_region_update(Rect(30, 30, 60, 60))
        assert query.recomputations == before + 1
