"""Unit tests for the PR quadtree."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.quadtree import QuadTree

BOUNDS = Rect(0, 0, 100, 100)


@pytest.fixture
def loaded(uniform_points_500):
    tree = QuadTree(BOUNDS, capacity=4)
    points = dict(enumerate(uniform_points_500))
    for i, p in points.items():
        tree.insert_point(i, p)
    return tree, points


class TestConstruction:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            QuadTree(BOUNDS, capacity=0)
        with pytest.raises(ValueError):
            QuadTree(BOUNDS, max_depth=0)
        with pytest.raises(ValueError):
            QuadTree(Rect(0, 0, 0, 5))

    def test_insert_outside_bounds_raises(self):
        tree = QuadTree(BOUNDS)
        with pytest.raises(ValueError, match="outside"):
            tree.insert_point("a", Point(200, 0))

    def test_insert_non_point_rect_raises(self):
        tree = QuadTree(BOUNDS)
        with pytest.raises(ValueError, match="points"):
            tree.insert("a", Rect(0, 0, 1, 1))

    def test_insert_degenerate_rect_ok(self):
        tree = QuadTree(BOUNDS)
        tree.insert("a", Rect.from_point(Point(5, 5)))
        assert tree.location_of("a") == Point(5, 5)

    def test_duplicate_id_raises(self):
        tree = QuadTree(BOUNDS)
        tree.insert_point("a", Point(1, 1))
        with pytest.raises(ValueError, match="duplicate"):
            tree.insert_point("a", Point(2, 2))


class TestQueries:
    def test_range_matches_brute_force(self, loaded):
        tree, points = loaded
        for window in [Rect(0, 0, 100, 100), Rect(20, 20, 40, 35), Rect(99, 99, 100, 100)]:
            expected = sorted(i for i, p in points.items() if window.contains_point(p))
            assert sorted(tree.range_query(window)) == expected

    def test_count_matches_range(self, loaded):
        tree, _ = loaded
        for window in [Rect(0, 0, 50, 50), Rect(10, 80, 90, 100), Rect(-5, -5, 0, 0)]:
            assert tree.count_in_window(window) == len(tree.range_query(window))

    def test_nearest_matches_brute_force(self, loaded, rng):
        tree, points = loaded
        for _ in range(10):
            q = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            got = tree.nearest(q, 5)
            got_d = sorted(points[i].distance_to(q) for i in got)
            exp_d = sorted(points[i].distance_to(q) for i in points)[:5]
            assert got_d == pytest.approx(exp_d)

    def test_nearest_invalid_k(self, loaded):
        tree, _ = loaded
        with pytest.raises(ValueError):
            tree.nearest(Point(0, 0), k=0)

    def test_nearest_on_empty(self):
        assert QuadTree(BOUNDS).nearest(Point(1, 1)) == []


class TestDelete:
    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            QuadTree(BOUNDS).delete("nope")

    def test_delete_updates_counts(self, loaded):
        tree, points = loaded
        before = tree.count_in_window(BOUNDS)
        tree.delete(0)
        assert tree.count_in_window(BOUNDS) == before - 1
        assert len(tree) == 499

    def test_mass_delete_collapses_tree(self, loaded):
        tree, points = loaded
        for i in range(450):
            tree.delete(i)
        window = Rect(0, 0, 100, 100)
        expected = sorted(range(450, 500))
        assert sorted(tree.range_query(window)) == expected
        # Re-insert after collapse works.
        tree.insert_point(9999, Point(50, 50))
        assert 9999 in tree.range_query(Rect(49, 49, 51, 51))


class TestCoincidentPoints:
    def test_max_depth_stops_splitting(self):
        tree = QuadTree(BOUNDS, capacity=2, max_depth=5)
        for i in range(20):
            tree.insert_point(i, Point(10, 10))
        assert tree.count_in_window(Rect(9, 9, 11, 11)) == 20
        for i in range(20):
            tree.delete(i)
        assert len(tree) == 0


class TestNodePath:
    def test_path_starts_at_root(self, loaded):
        tree, points = loaded
        path = tree.node_path(points[0])
        assert path[0] == (BOUNDS, 500)

    def test_path_rects_nest_and_counts_decrease(self, loaded):
        tree, points = loaded
        path = tree.node_path(points[3])
        for (outer, oc), (inner, ic) in zip(path, path[1:]):
            assert outer.contains_rect(inner)
            assert ic <= oc

    def test_path_every_rect_contains_point(self, loaded):
        tree, points = loaded
        p = points[42]
        for rect, _ in tree.node_path(p):
            assert rect.contains_point(p)

    def test_path_outside_bounds_raises(self, loaded):
        tree, _ = loaded
        with pytest.raises(ValueError):
            tree.node_path(Point(-1, -1))
