"""Unit tests for repro.geometry.sampling."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.sampling import (
    boundary_point,
    gaussian_cluster,
    uniform_arrays,
    uniform_point,
    uniform_points,
    weighted_choice,
    zipf_weights,
)

R = Rect(10, 20, 30, 25)


class TestUniformSampling:
    def test_uniform_point_inside(self, rng):
        for _ in range(100):
            assert R.contains_point(uniform_point(R, rng))

    def test_uniform_points_count_and_containment(self, rng):
        pts = uniform_points(R, 250, rng)
        assert len(pts) == 250
        assert all(R.contains_point(p) for p in pts)

    def test_uniform_points_zero(self, rng):
        assert uniform_points(R, 0, rng) == []

    def test_uniform_points_negative_raises(self, rng):
        with pytest.raises(ValueError):
            uniform_points(R, -1, rng)

    def test_degenerate_rect_returns_the_point(self, rng):
        deg = Rect.from_point(Point(5, 7))
        assert uniform_point(deg, rng) == Point(5, 7)
        assert all(p == Point(5, 7) for p in uniform_points(deg, 10, rng))

    def test_uniform_arrays_match_rect(self, rng):
        xs, ys = uniform_arrays(R, 500, rng)
        assert xs.shape == ys.shape == (500,)
        assert xs.min() >= R.min_x and xs.max() <= R.max_x
        assert ys.min() >= R.min_y and ys.max() <= R.max_y

    def test_uniform_covers_both_halves(self, rng):
        xs, _ = uniform_arrays(R, 2000, rng)
        left = np.count_nonzero(xs < R.center.x)
        assert 800 < left < 1200  # roughly half

    def test_deterministic_given_seed(self):
        a = uniform_points(R, 5, np.random.default_rng(1))
        b = uniform_points(R, 5, np.random.default_rng(1))
        assert a == b


class TestGaussianCluster:
    def test_count(self, rng):
        assert len(gaussian_cluster(Point(0, 0), 1.0, 50, rng)) == 50

    def test_clamped_to_bounds(self, rng):
        bounds = Rect(0, 0, 10, 10)
        pts = gaussian_cluster(Point(0, 0), 5.0, 500, rng, bounds=bounds)
        assert all(bounds.contains_point(p) for p in pts)

    def test_concentrates_near_center(self, rng):
        pts = gaussian_cluster(Point(50, 50), 1.0, 500, rng)
        mean_dist = np.mean([p.distance_to(Point(50, 50)) for p in pts])
        assert mean_dist < 3.0

    def test_negative_sigma_raises(self, rng):
        with pytest.raises(ValueError):
            gaussian_cluster(Point(0, 0), -1.0, 10, rng)


class TestBoundaryPoint:
    def test_on_boundary(self, rng):
        for _ in range(200):
            p = boundary_point(R, rng)
            assert R.on_boundary(p, tolerance=1e-9)

    def test_degenerate_rect(self, rng):
        deg = Rect.from_point(Point(1, 2))
        assert boundary_point(deg, rng) == Point(1, 2)

    def test_all_edges_hit(self, rng):
        edges = set()
        for _ in range(400):
            p = boundary_point(R, rng)
            if p.y == R.min_y:
                edges.add("bottom")
            elif p.y == R.max_y:
                edges.add("top")
            elif p.x == R.min_x:
                edges.add("left")
            elif p.x == R.max_x:
                edges.add("right")
        assert edges == {"bottom", "top", "left", "right"}


class TestWeightedChoice:
    def test_degenerate_weight_vector(self, rng):
        assert weighted_choice([0.0, 1.0, 0.0], rng) == 1

    def test_distribution_roughly_matches(self, rng):
        counts = np.zeros(2)
        for _ in range(1000):
            counts[weighted_choice([3.0, 1.0], rng)] += 1
        assert counts[0] > counts[1]

    def test_invalid_weights_raise(self, rng):
        with pytest.raises(ValueError):
            weighted_choice([0.0, 0.0], rng)
        with pytest.raises(ValueError):
            weighted_choice([1.0, -0.5], rng)


class TestZipfWeights:
    def test_normalised(self):
        assert sum(zipf_weights(10, 1.0)) == pytest.approx(1.0)

    def test_zero_skew_is_uniform(self):
        w = zipf_weights(4, 0.0)
        assert all(x == pytest.approx(0.25) for x in w)

    def test_monotone_decreasing(self):
        w = zipf_weights(6, 1.2)
        assert all(a >= b for a, b in zip(w, w[1:]))

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)
