"""Unit tests for the uniform grid index."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.grid import GridIndex, square_grid_for_density

BOUNDS = Rect(0, 0, 100, 100)


@pytest.fixture
def loaded(uniform_points_500):
    grid = GridIndex(BOUNDS, cols=16)
    points = dict(enumerate(uniform_points_500))
    for i, p in points.items():
        grid.insert_point(i, p)
    return grid, points


class TestCellArithmetic:
    def test_cell_of_interior(self):
        grid = GridIndex(BOUNDS, cols=10)
        assert grid.cell_of(Point(5, 5)) == (0, 0)
        assert grid.cell_of(Point(95, 15)) == (9, 1)

    def test_cell_of_far_boundary_belongs_to_last_cell(self):
        grid = GridIndex(BOUNDS, cols=10)
        assert grid.cell_of(Point(100, 100)) == (9, 9)

    def test_cell_of_outside_raises(self):
        grid = GridIndex(BOUNDS, cols=10)
        with pytest.raises(ValueError):
            grid.cell_of(Point(101, 0))

    def test_cell_rect_tiles_universe(self):
        grid = GridIndex(BOUNDS, cols=4, rows=5)
        total = sum(
            grid.cell_rect(c, r).area for c in range(4) for r in range(5)
        )
        assert total == pytest.approx(BOUNDS.area)

    def test_cell_rect_out_of_range_raises(self):
        grid = GridIndex(BOUNDS, cols=4)
        with pytest.raises(ValueError):
            grid.cell_rect(4, 0)

    def test_block_rect_spans_cells(self):
        grid = GridIndex(BOUNDS, cols=10)
        assert grid.block_rect(1, 1, 3, 2) == Rect(10, 10, 40, 30)

    def test_point_lands_in_its_cell_rect(self, rng):
        grid = GridIndex(BOUNDS, cols=7, rows=13)
        for _ in range(200):
            p = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            col, row = grid.cell_of(p)
            assert grid.cell_rect(col, row).contains_point(p)


class TestCounts:
    def test_cell_counts_sum_to_total(self, loaded):
        grid, points = loaded
        total = sum(
            grid.cell_count(c, r) for c in range(grid.cols) for r in range(grid.rows)
        )
        assert total == len(points)

    def test_block_count_matches_cells(self, loaded):
        grid, _ = loaded
        block = grid.block_count(2, 3, 5, 7)
        manual = sum(
            grid.cell_count(c, r) for c in range(2, 6) for r in range(3, 8)
        )
        assert block == manual

    def test_counts_follow_deletes(self, loaded):
        grid, points = loaded
        col, row = grid.cell_of(points[0])
        before = grid.cell_count(col, row)
        grid.delete(0)
        assert grid.cell_count(col, row) == before - 1


class TestQueries:
    def test_range_matches_brute_force(self, loaded):
        grid, points = loaded
        for window in [Rect(0, 0, 100, 100), Rect(13, 27, 55, 61), Rect(-10, -10, 5, 5)]:
            expected = sorted(i for i, p in points.items() if window.contains_point(p))
            assert sorted(grid.range_query(window)) == expected

    def test_range_disjoint_window(self, loaded):
        grid, _ = loaded
        assert grid.range_query(Rect(200, 200, 300, 300)) == []

    def test_nearest_matches_brute_force(self, loaded, rng):
        grid, points = loaded
        for _ in range(10):
            q = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            got = grid.nearest(q, 3)
            got_d = sorted(points[i].distance_to(q) for i in got)
            exp_d = sorted(points[i].distance_to(q) for i in points)[:3]
            assert got_d == pytest.approx(exp_d)

    def test_nearest_in_sparse_grid(self):
        grid = GridIndex(BOUNDS, cols=20)
        grid.insert_point("far", Point(99, 99))
        assert grid.nearest(Point(0, 0), 1) == ["far"]

    def test_nearest_empty(self):
        assert GridIndex(BOUNDS, cols=4).nearest(Point(0, 0)) == []


class TestLifecycle:
    def test_duplicate_raises(self):
        grid = GridIndex(BOUNDS, cols=4)
        grid.insert_point("a", Point(1, 1))
        with pytest.raises(ValueError, match="duplicate"):
            grid.insert_point("a", Point(2, 2))

    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            GridIndex(BOUNDS, cols=4).delete("nope")

    def test_update_moves_between_cells(self):
        grid = GridIndex(BOUNDS, cols=10)
        grid.insert_point("a", Point(5, 5))
        grid.update("a", Rect.from_point(Point(95, 95)))
        assert grid.cell_count(0, 0) == 0
        assert grid.cell_count(9, 9) == 1

    def test_non_point_insert_raises(self):
        with pytest.raises(ValueError, match="points"):
            GridIndex(BOUNDS, cols=4).insert("a", Rect(0, 0, 5, 5))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GridIndex(BOUNDS, cols=0)
        with pytest.raises(ValueError):
            GridIndex(Rect(0, 0, 5, 0), cols=4)


class TestDensityHelper:
    def test_square_grid_for_density(self):
        grid = square_grid_for_density(BOUNDS, n_points=1000, points_per_cell=10)
        assert grid.cols == grid.rows == 10

    def test_small_population_gets_single_cell(self):
        grid = square_grid_for_density(BOUNDS, n_points=0, points_per_cell=10)
        assert grid.cols == 1

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            square_grid_for_density(BOUNDS, n_points=10, points_per_cell=0)
