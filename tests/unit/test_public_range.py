"""Unit tests for public range queries over private data (Figure 6a)."""

import pytest

from repro.core.stores import PrivateStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.queries.public_range import (
    exact_range_count,
    membership_probability,
    naive_range_count,
    public_range_count,
)

WINDOW = Rect(0, 0, 10, 10)


def figure_6a_store():
    store = PrivateStore()
    store.set_region("D", Rect(1, 1, 3, 3))       # fully inside -> 1.0
    store.set_region("C", Rect(20, 20, 22, 22))   # disjoint    -> 0.0
    store.set_region("A", Rect(-2, 0, 6, 4))      # 24/32       -> 0.75
    store.set_region("B", Rect(-5, 0, 5, 5))      # 25/50       -> 0.5
    store.set_region("E", Rect(5, -8, 10, 2))     # 10/50       -> 0.2
    store.set_region("F", Rect(6, 6, 14, 14))     # 16/64       -> 0.25
    return store


class TestMembershipProbability:
    def test_fully_inside(self):
        assert membership_probability(Rect(1, 1, 3, 3), WINDOW) == 1.0

    def test_disjoint(self):
        assert membership_probability(Rect(20, 20, 30, 30), WINDOW) == 0.0

    def test_partial_overlap_ratio(self):
        assert membership_probability(Rect(-5, 0, 5, 5), WINDOW) == pytest.approx(0.5)

    def test_degenerate_region_inside(self):
        assert membership_probability(Rect.from_point(Point(5, 5)), WINDOW) == 1.0

    def test_degenerate_region_outside(self):
        assert membership_probability(Rect.from_point(Point(50, 5)), WINDOW) == 0.0


class TestFigure6a:
    def test_per_object_probabilities(self):
        answer = public_range_count(figure_6a_store(), WINDOW)
        probs = dict(answer.probabilities)
        assert probs.pop("D") == pytest.approx(1.0)
        assert probs.pop("A") == pytest.approx(0.75)
        assert probs.pop("B") == pytest.approx(0.5)
        assert probs.pop("E") == pytest.approx(0.2)
        assert probs.pop("F") == pytest.approx(0.25)
        assert probs == {}  # C omitted: zero probability

    def test_absolute_answer_is_2_7(self):
        assert public_range_count(figure_6a_store(), WINDOW).expected == pytest.approx(2.7)

    def test_interval_answer_is_1_to_5(self):
        assert public_range_count(figure_6a_store(), WINDOW).interval == (1, 5)

    def test_naive_answer_is_5(self):
        # "Dealing with each object as a non-zero size object would return
        # five as the query answer, which is totally inaccurate."
        assert naive_range_count(figure_6a_store(), WINDOW) == 5

    def test_pdf_support_matches_interval(self):
        answer = public_range_count(figure_6a_store(), WINDOW)
        pmf = answer.pmf()
        assert pmf[0] == pytest.approx(0.0)  # D is certain: count >= 1
        assert pmf.sum() == pytest.approx(1.0)
        assert len(pmf) == 6  # counts 0..5


class TestSweepBehaviour:
    def test_expected_tracks_truth_for_exact_regions(self, uniform_points_500):
        store = PrivateStore()
        exact = {}
        for i, p in enumerate(uniform_points_500):
            store.set_region(i, Rect.from_point(p))
            exact[i] = p
        window = Rect(20, 20, 70, 55)
        answer = public_range_count(store, window)
        assert answer.expected == pytest.approx(exact_range_count(exact, window))
        assert answer.interval[0] == answer.interval[1]

    def test_interval_brackets_truth_for_cloaked_regions(self, uniform_points_500, rng):
        store = PrivateStore()
        exact = {}
        for i, p in enumerate(uniform_points_500):
            w, h = rng.uniform(2, 12, 2)
            region = Rect.from_center(p, float(w), float(h))
            store.set_region(i, region)
            exact[i] = p
        window = Rect(25, 25, 60, 75)
        truth = exact_range_count(exact, window)
        answer = public_range_count(store, window)
        lo, hi = answer.interval
        assert lo <= truth <= hi

    def test_empty_store(self):
        answer = public_range_count(PrivateStore(), WINDOW)
        assert answer.expected == 0.0
        assert naive_range_count(PrivateStore(), WINDOW) == 0


class TestExactRangeCount:
    def test_counts_containment(self):
        locations = {"a": Point(1, 1), "b": Point(50, 50), "c": Point(10, 10)}
        assert exact_range_count(locations, WINDOW) == 2
