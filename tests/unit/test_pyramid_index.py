"""Unit tests for the multi-level grid (pyramid) index."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.pyramid import PyramidGrid

BOUNDS = Rect(0, 0, 100, 100)


@pytest.fixture
def loaded(uniform_points_500):
    pyramid = PyramidGrid(BOUNDS, height=6)
    points = dict(enumerate(uniform_points_500))
    for i, p in points.items():
        pyramid.insert_point(i, p)
    return pyramid, points


class TestStructure:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PyramidGrid(BOUNDS, height=-1)
        with pytest.raises(ValueError):
            PyramidGrid(Rect(0, 0, 0, 1), height=2)

    def test_cells_per_side(self):
        pyramid = PyramidGrid(BOUNDS, height=3)
        assert [pyramid.cells_per_side(h) for h in range(4)] == [1, 2, 4, 8]

    def test_level_0_is_whole_space(self):
        pyramid = PyramidGrid(BOUNDS, height=3)
        assert pyramid.cell_rect(0, 0, 0) == BOUNDS

    def test_invalid_level_raises(self):
        pyramid = PyramidGrid(BOUNDS, height=3)
        with pytest.raises(ValueError):
            pyramid.cell_rect(4, 0, 0)
        with pytest.raises(ValueError):
            pyramid.cell_count(-1, 0, 0)

    def test_child_cells_nest_in_parent(self):
        pyramid = PyramidGrid(BOUNDS, height=4)
        parent = pyramid.cell_rect(2, 1, 1)
        for dc in (0, 1):
            for dr in (0, 1):
                assert parent.contains_rect(pyramid.cell_rect(3, 2 + dc, 2 + dr))


class TestCounts:
    def test_level0_count_is_population(self, loaded):
        pyramid, points = loaded
        assert pyramid.cell_count(0, 0, 0) == len(points)

    def test_each_level_sums_to_population(self, loaded):
        pyramid, points = loaded
        for level in range(pyramid.height + 1):
            side = pyramid.cells_per_side(level)
            total = sum(
                pyramid.cell_count(level, c, r)
                for c in range(side)
                for r in range(side)
            )
            assert total == len(points)

    def test_parent_count_is_sum_of_children(self, loaded):
        pyramid, _ = loaded
        for level in range(pyramid.height):
            side = pyramid.cells_per_side(level)
            for c in range(side):
                for r in range(side):
                    children = sum(
                        pyramid.cell_count(level + 1, 2 * c + dc, 2 * r + dr)
                        for dc in (0, 1)
                        for dr in (0, 1)
                    )
                    assert pyramid.cell_count(level, c, r) == children

    def test_delete_decrements_every_level(self, loaded):
        pyramid, points = loaded
        p = points[0]
        before = [
            pyramid.cell_count(level, *pyramid.cell_at(level, p))
            for level in range(pyramid.height + 1)
        ]
        pyramid.delete(0)
        after = [
            pyramid.cell_count(level, *pyramid.cell_at(level, p))
            for level in range(pyramid.height + 1)
        ]
        assert all(b - 1 == a for b, a in zip(before, after))


class TestQueries:
    def test_range_matches_brute_force(self, loaded):
        pyramid, points = loaded
        for window in [Rect(0, 0, 100, 100), Rect(17, 33, 62, 78), Rect(99.5, 0, 100, 100)]:
            expected = sorted(i for i, p in points.items() if window.contains_point(p))
            assert sorted(pyramid.range_query(window)) == expected

    def test_count_in_window_matches_range(self, loaded):
        pyramid, _ = loaded
        for window in [Rect(0, 0, 33, 33), Rect(50, 50, 100, 100), Rect(12.5, 0, 25, 12.5)]:
            assert pyramid.count_in_window(window) == len(pyramid.range_query(window))

    def test_count_exact_cell_fast_path(self, loaded):
        pyramid, _ = loaded
        cell = pyramid.cell_rect(3, 2, 5)
        assert pyramid.cell_for_rect(cell) == (3, 2, 5)
        assert pyramid.count_in_window(cell) == len(pyramid.range_query(cell))

    def test_cell_for_rect_rejects_non_cells(self, loaded):
        pyramid, _ = loaded
        assert pyramid.cell_for_rect(Rect(0, 0, 33, 33)) is None
        assert pyramid.cell_for_rect(Rect(1, 0, 13.5, 12.5)) is None
        assert pyramid.cell_for_rect(Rect.from_point(Point(3, 3))) is None

    def test_nearest_matches_brute_force(self, loaded, rng):
        pyramid, points = loaded
        for _ in range(10):
            q = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            got = pyramid.nearest(q, 4)
            got_d = sorted(points[i].distance_to(q) for i in got)
            exp_d = sorted(points[i].distance_to(q) for i in points)[:4]
            assert got_d == pytest.approx(exp_d)

    def test_nearest_empty_and_invalid(self):
        pyramid = PyramidGrid(BOUNDS, height=2)
        assert pyramid.nearest(Point(0, 0)) == []
        with pytest.raises(ValueError):
            pyramid.nearest(Point(0, 0), k=0)


class TestPathUp:
    def test_path_levels_descend(self, loaded):
        pyramid, points = loaded
        path = pyramid.path_up(points[1])
        assert [lvl for lvl, _, _ in path] == list(range(pyramid.height, -1, -1))

    def test_path_counts_monotone_nondecreasing(self, loaded):
        pyramid, points = loaded
        counts = [c for _, _, c in pyramid.path_up(points[1])]
        assert counts == sorted(counts)

    def test_path_rects_contain_point(self, loaded):
        pyramid, points = loaded
        for _, rect, _ in pyramid.path_up(points[2]):
            assert rect.contains_point(points[2])


class TestLifecycle:
    def test_duplicate_raises(self):
        pyramid = PyramidGrid(BOUNDS, height=2)
        pyramid.insert_point("a", Point(1, 1))
        with pytest.raises(ValueError, match="duplicate"):
            pyramid.insert_point("a", Point(2, 2))

    def test_outside_bounds_raises(self):
        with pytest.raises(ValueError):
            PyramidGrid(BOUNDS, height=2).insert_point("a", Point(-1, 0))

    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            PyramidGrid(BOUNDS, height=2).delete("nope")

    def test_non_point_insert_raises(self):
        with pytest.raises(ValueError, match="points"):
            PyramidGrid(BOUNDS, height=2).insert("a", Rect(0, 0, 1, 1))

    def test_insert_delete_roundtrip_empties(self, loaded):
        pyramid, points = loaded
        for i in points:
            pyramid.delete(i)
        assert len(pyramid) == 0
        assert pyramid.cell_count(0, 0, 0) == 0
        assert pyramid.range_query(BOUNDS) == []
