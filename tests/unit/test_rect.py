"""Unit tests for repro.geometry.rect."""

import math

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect, total_covered_area


class TestConstruction:
    def test_inverted_rect_raises(self):
        with pytest.raises(ValueError, match="inverted"):
            Rect(5, 0, 1, 10)
        with pytest.raises(ValueError, match="inverted"):
            Rect(0, 5, 10, 1)

    def test_from_center(self):
        r = Rect.from_center(Point(5, 5), 4, 2)
        assert r == Rect(3, 4, 7, 6)

    def test_from_center_negative_dims_raise(self):
        with pytest.raises(ValueError):
            Rect.from_center(Point(0, 0), -1, 1)

    def test_from_points_is_mbr(self):
        r = Rect.from_points([Point(1, 5), Point(-2, 0), Point(3, 3)])
        assert r == Rect(-2, 0, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_from_point_is_degenerate(self):
        r = Rect.from_point(Point(2, 3))
        assert r.area == 0.0
        assert r.is_degenerate
        assert r.center == Point(2, 3)

    def test_bounding(self):
        r = Rect.bounding([Rect(0, 0, 1, 1), Rect(5, -2, 6, 0)])
        assert r == Rect(0, -2, 6, 1)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])


class TestMeasures:
    def test_width_height_area_perimeter(self):
        r = Rect(0, 0, 4, 3)
        assert (r.width, r.height, r.area, r.perimeter) == (4, 3, 12, 14)

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == Point(2, 1)

    def test_corners_order(self):
        r = Rect(0, 0, 2, 1)
        assert r.corners == (Point(0, 0), Point(2, 0), Point(2, 1), Point(0, 1))

    def test_degenerate_flags(self):
        assert Rect(0, 0, 0, 5).is_degenerate
        assert not Rect(0, 0, 1, 1).is_degenerate


class TestPredicates:
    def test_contains_point_boundary_inclusive(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(2, 2))
        assert r.contains_point(Point(1, 1))
        assert not r.contains_point(Point(2.0001, 1))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 9, 9))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(5, 5, 11, 9))

    def test_intersects_touching_edges(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))
        assert not Rect(0, 0, 1, 1).intersects(Rect(1.01, 0, 2, 1))

    def test_on_boundary(self):
        r = Rect(0, 0, 4, 4)
        assert r.on_boundary(Point(0, 2))
        assert r.on_boundary(Point(4, 4))
        assert not r.on_boundary(Point(2, 2))
        assert r.on_boundary(Point(2, 3.95), tolerance=0.1)


class TestCombinators:
    def test_intersection(self):
        a, b = Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)
        assert a.intersection(b) == Rect(2, 2, 4, 4)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_intersection_area_matches_intersection(self):
        a, b = Rect(0, 0, 4, 4), Rect(1, -1, 3, 1)
        assert a.intersection_area(b) == a.intersection(b).area
        assert Rect(0, 0, 1, 1).intersection_area(Rect(5, 5, 6, 6)) == 0.0

    def test_union_mbr(self):
        assert Rect(0, 0, 1, 1).union_mbr(Rect(3, -1, 4, 0)) == Rect(0, -1, 4, 1)

    def test_expanded_positive(self):
        assert Rect(1, 1, 2, 2).expanded(1) == Rect(0, 0, 3, 3)

    def test_expanded_negative_shrinks(self):
        assert Rect(0, 0, 10, 10).expanded(-2) == Rect(2, 2, 8, 8)

    def test_expanded_negative_collapses_to_center(self):
        r = Rect(0, 0, 2, 2).expanded(-5)
        assert r.area == 0.0
        assert r.center == Point(1, 1)

    def test_clipped(self):
        assert Rect(-5, -5, 5, 5).clipped(Rect(0, 0, 10, 10)) == Rect(0, 0, 5, 5)

    def test_clipped_disjoint_raises(self):
        with pytest.raises(ValueError, match="outside"):
            Rect(20, 20, 30, 30).clipped(Rect(0, 0, 10, 10))

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(5, -1) == Rect(5, -1, 6, 0)

    def test_quadrants_partition_area(self):
        r = Rect(0, 0, 8, 4)
        quads = r.quadrants()
        assert sum(q.area for q in quads) == pytest.approx(r.area)
        assert quads[0] == Rect(0, 0, 4, 2)  # SW
        assert quads[3] == Rect(4, 2, 8, 4)  # NE


class TestScaledToArea:
    def test_grow_preserves_aspect_ratio(self):
        r = Rect(0, 0, 4, 1).scaled_to_area(16)
        assert r.area == pytest.approx(16)
        assert r.width / r.height == pytest.approx(4.0)

    def test_shrink(self):
        r = Rect(0, 0, 4, 4).scaled_to_area(4)
        assert r.area == pytest.approx(4)
        assert r.center == Point(2, 2)

    def test_degenerate_grows_into_square(self):
        r = Rect.from_point(Point(5, 5)).scaled_to_area(9)
        assert r.area == pytest.approx(9)
        assert r.width == pytest.approx(r.height)

    def test_respects_bounds_by_shifting(self):
        bounds = Rect(0, 0, 100, 100)
        r = Rect.from_point(Point(1, 1)).scaled_to_area(100, bounds=bounds)
        assert bounds.contains_rect(r)
        assert r.area == pytest.approx(100)

    def test_larger_than_bounds_clips(self):
        bounds = Rect(0, 0, 10, 10)
        r = Rect(4, 4, 6, 6).scaled_to_area(400, bounds=bounds)
        assert bounds.contains_rect(r)

    def test_negative_target_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).scaled_to_area(-1)


class TestTotalCoveredArea:
    def test_empty(self):
        assert total_covered_area([]) == 0.0

    def test_single(self):
        assert total_covered_area([Rect(0, 0, 2, 3)]) == pytest.approx(6.0)

    def test_disjoint_sum(self):
        rects = [Rect(0, 0, 1, 1), Rect(5, 5, 7, 6)]
        assert total_covered_area(rects) == pytest.approx(3.0)

    def test_overlap_not_double_counted(self):
        rects = [Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)]
        assert total_covered_area(rects) == pytest.approx(7.0)

    def test_nested(self):
        rects = [Rect(0, 0, 10, 10), Rect(2, 2, 4, 4)]
        assert total_covered_area(rects) == pytest.approx(100.0)


def test_as_tuple_and_iter():
    r = Rect(1, 2, 3, 4)
    assert r.as_tuple() == (1, 2, 3, 4)
    assert tuple(r) == (1, 2, 3, 4)


def test_rects_hashable():
    assert len({Rect(0, 0, 1, 1), Rect(0, 0, 1, 1)}) == 1
