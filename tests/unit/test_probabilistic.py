"""Unit tests for probabilistic answer formats (Section 6.2.2)."""

import math

import numpy as np
import pytest

from repro.queries.probabilistic import (
    CountAnswer,
    NearestAnswer,
    poisson_binomial_pmf,
)


class TestPoissonBinomial:
    def test_empty(self):
        pmf = poisson_binomial_pmf([])
        assert list(pmf) == [1.0]

    def test_single_trial(self):
        pmf = poisson_binomial_pmf([0.3])
        assert pmf[0] == pytest.approx(0.7)
        assert pmf[1] == pytest.approx(0.3)

    def test_all_certain(self):
        pmf = poisson_binomial_pmf([1.0, 1.0, 1.0])
        assert pmf[3] == pytest.approx(1.0)
        assert pmf[:3] == pytest.approx([0.0, 0.0, 0.0])

    def test_matches_binomial_for_equal_ps(self):
        n, p = 10, 0.4
        pmf = poisson_binomial_pmf([p] * n)
        for k in range(n + 1):
            expected = math.comb(n, k) * p**k * (1 - p) ** (n - k)
            assert pmf[k] == pytest.approx(expected)

    def test_sums_to_one(self, rng):
        probs = list(rng.uniform(0, 1, size=50))
        pmf = poisson_binomial_pmf(probs)
        assert pmf.sum() == pytest.approx(1.0)

    def test_mean_matches_sum_of_probs(self, rng):
        probs = list(rng.uniform(0, 1, size=30))
        pmf = poisson_binomial_pmf(probs)
        mean = sum(k * p for k, p in enumerate(pmf))
        assert mean == pytest.approx(sum(probs))

    def test_variance_matches_theory(self, rng):
        probs = list(rng.uniform(0, 1, size=30))
        pmf = poisson_binomial_pmf(probs)
        mean = sum(k * p for k, p in enumerate(pmf))
        var = sum((k - mean) ** 2 * p for k, p in enumerate(pmf))
        assert var == pytest.approx(sum(p * (1 - p) for p in probs))

    def test_out_of_range_probability_raises(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf([0.5, 1.2])
        with pytest.raises(ValueError):
            poisson_binomial_pmf([-0.1])


class TestCountAnswer:
    FIG6A = {"D": 1.0, "A": 0.75, "B": 0.5, "E": 0.2, "F": 0.25}

    def test_figure_6a_expected(self):
        assert CountAnswer(self.FIG6A).expected == pytest.approx(2.7)

    def test_figure_6a_interval(self):
        assert CountAnswer(self.FIG6A).interval == (1, 5)

    def test_pmf_consistent_with_expected(self):
        answer = CountAnswer(self.FIG6A)
        pmf = answer.pmf()
        mean = sum(k * p for k, p in enumerate(pmf))
        assert mean == pytest.approx(answer.expected)

    def test_probability_of_count(self):
        answer = CountAnswer({"a": 0.5})
        assert answer.probability_of_count(0) == pytest.approx(0.5)
        assert answer.probability_of_count(1) == pytest.approx(0.5)
        assert answer.probability_of_count(2) == 0.0
        assert answer.probability_of_count(-1) == 0.0

    def test_most_likely_count(self):
        assert CountAnswer({"a": 0.9, "b": 0.9}).most_likely_count() == 2
        assert CountAnswer({"a": 0.1, "b": 0.1}).most_likely_count() == 0

    def test_variance(self):
        answer = CountAnswer({"a": 0.5, "b": 1.0})
        assert answer.variance() == pytest.approx(0.25)

    def test_empty_answer(self):
        answer = CountAnswer({})
        assert answer.expected == 0.0
        assert answer.interval == (0, 0)
        assert list(answer.pmf()) == [1.0]
        assert len(answer) == 0

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            CountAnswer({"a": 1.5})


class TestNearestAnswer:
    def test_candidates_excludes_zero_probability(self):
        answer = NearestAnswer({"a": 0.7, "b": 0.3, "c": 0.0})
        assert answer.candidates == {"a", "b"}

    def test_top(self):
        assert NearestAnswer({"a": 0.2, "b": 0.5, "c": 0.3}).top == "b"

    def test_top_of_empty_raises(self):
        with pytest.raises(ValueError):
            NearestAnswer({}).top

    def test_ranked_descending(self):
        ranked = NearestAnswer({"a": 0.2, "b": 0.5, "c": 0.3}).ranked()
        assert [o for o, _ in ranked] == ["b", "c", "a"]

    def test_entropy_certain_is_zero(self):
        assert NearestAnswer({"a": 1.0}).entropy() == 0.0

    def test_entropy_uniform_is_log2_n(self):
        answer = NearestAnswer({i: 0.25 for i in range(4)})
        assert answer.entropy() == pytest.approx(2.0)

    def test_total_probability(self):
        assert NearestAnswer({"a": 0.4, "b": 0.6}).total_probability == pytest.approx(1.0)

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            NearestAnswer({"a": -0.2})
