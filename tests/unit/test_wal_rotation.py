"""Size-based WAL rotation: sealed segments, markers, recovery contract."""

import json
import os

import pytest

from repro import MobileUser, PrivacyProfile, PrivacySystem, PyramidCloaker
from repro.geometry import Point, Rect
from repro.obs import Telemetry
from repro.obs.events import LOG_TRUNCATED, WAL_ROTATED
from repro.persist import RecoveryError, system_digest
from repro.persist.checkpoint import WAL_NAME

BOUNDS = Rect(0, 0, 100, 100)


def build_system(directory=None):
    system = PrivacySystem(
        BOUNDS, PyramidCloaker(BOUNDS, height=5), telemetry=Telemetry()
    )
    if directory is not None:
        system.attach_wal(directory)
    return system


def populate(system, users=12, start=0):
    for i in range(start, start + users):
        system.add_user(
            MobileUser(
                f"u{i}",
                Point(3.0 * (i % 30) + 1, 2.0 * (i % 45) + 1),
                PrivacyProfile.always(k=3),
            )
        )
    system.publish_all()


def wal_lines(directory):
    with open(os.path.join(directory, WAL_NAME), encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestRotate:
    def test_rotation_seals_segment_and_writes_marker(self, tmp_path):
        directory = str(tmp_path)
        system = build_system(directory)
        populate(system)
        sealed_seq = system.obs.events._seq
        segment = system.rotate_wal()
        assert segment == f"wal-{sealed_seq:012d}.jsonl"
        assert os.path.exists(os.path.join(directory, segment))
        # Fresh WAL: marker first, then the wal.rotated event itself.
        records = wal_lines(directory)
        marker = records[0]
        assert marker["kind"] == LOG_TRUNCATED
        assert marker["rotated_to"] == segment
        assert marker["last_seq"] == sealed_seq
        assert marker["reason"] == "rotated"
        assert any(r["kind"] == WAL_ROTATED for r in records[1:])
        # The sealed segment holds the entire pre-rotation trail.
        with open(os.path.join(directory, segment), encoding="utf-8") as f:
            sealed = [json.loads(line) for line in f if line.strip()]
        assert sealed[-1]["seq"] == sealed_seq

    def test_rotate_noop_without_wal_or_traffic(self, tmp_path):
        assert build_system(None).rotate_wal() is None  # no WAL attached
        idle = build_system(str(tmp_path))
        assert idle.rotate_wal() is None  # nothing streamed yet

    def test_post_rotation_appends_stay_contiguous(self, tmp_path):
        directory = str(tmp_path)
        system = build_system(directory)
        populate(system, users=6)
        sealed_seq = system.obs.events._seq
        system.rotate_wal()
        populate(system, users=4, start=6)
        tail = [r for r in wal_lines(directory) if r["kind"] != LOG_TRUNCATED]
        seqs = [r["seq"] for r in tail]
        assert seqs == sorted(seqs)
        assert all(s > sealed_seq for s in seqs)


class TestRecoveryContract:
    def test_rotate_then_checkpoint_then_tail_recovers(self, tmp_path):
        directory = str(tmp_path)
        system = build_system(directory)
        populate(system, users=10)
        system.rotate_wal()
        system.checkpoint(directory, rotate_wal_over=None)
        populate(system, users=5, start=10)  # tail past the checkpoint
        recovered = PrivacySystem.recover(directory, telemetry=Telemetry())
        assert system_digest(recovered) == system_digest(system)

    def test_rotation_without_covering_checkpoint_refused(self, tmp_path):
        directory = str(tmp_path)
        system = build_system(directory)
        populate(system, users=8)
        system.rotate_wal()
        with pytest.raises(RecoveryError, match="rotated"):
            PrivacySystem.recover(directory, telemetry=Telemetry())

    def test_allow_gaps_gives_best_effort_system(self, tmp_path):
        directory = str(tmp_path)
        system = build_system(directory)
        populate(system, users=8)
        system.rotate_wal()
        recovered = PrivacySystem.recover(
            directory, telemetry=Telemetry(), allow_gaps=True
        )
        # The rotated-away prefix is gone; best effort returns a live
        # (possibly empty) system rather than refusing outright.
        assert isinstance(recovered, PrivacySystem)

    def test_stale_checkpoint_behind_rotation_refused(self, tmp_path):
        directory = str(tmp_path)
        system = build_system(directory)
        populate(system, users=6)
        system.checkpoint(directory, rotate_wal_over=None)
        populate(system, users=6, start=6)
        system.rotate_wal()  # rotation point is now past the checkpoint
        with pytest.raises(RecoveryError, match="rotated"):
            PrivacySystem.recover(directory, telemetry=Telemetry())


class TestAutoRotation:
    def test_checkpoint_rotates_oversized_wal(self, tmp_path):
        directory = str(tmp_path)
        system = build_system(directory)
        populate(system, users=10)
        system.checkpoint(directory, rotate_wal_over=10)  # tiny threshold
        segments = [
            name
            for name in os.listdir(directory)
            if name.startswith("wal-") and name.endswith(".jsonl")
        ]
        assert len(segments) == 1
        # Rotation happened *before* the checkpoint: the checkpoint seq
        # covers the rotation point, so plain recovery succeeds.
        recovered = PrivacySystem.recover(directory, telemetry=Telemetry())
        assert system_digest(recovered) == system_digest(system)

    def test_rotate_wal_over_none_never_rotates(self, tmp_path):
        directory = str(tmp_path)
        system = build_system(directory)
        populate(system, users=10)
        system.checkpoint(directory, rotate_wal_over=None)
        assert not [
            n
            for n in os.listdir(directory)
            if n.startswith("wal-") and n.endswith(".jsonl")
        ]

    def test_small_wal_not_rotated(self, tmp_path):
        directory = str(tmp_path)
        system = build_system(directory)
        populate(system, users=4)
        system.checkpoint(directory)  # default 32 MiB threshold
        assert not [
            n
            for n in os.listdir(directory)
            if n.startswith("wal-") and n.endswith(".jsonl")
        ]

    def test_repeated_rotation_cycles(self, tmp_path):
        directory = str(tmp_path)
        system = build_system(directory)
        for round_no in range(3):
            populate(system, users=5, start=5 * round_no)
            system.checkpoint(directory, rotate_wal_over=10)
        segments = [
            n
            for n in os.listdir(directory)
            if n.startswith("wal-") and n.endswith(".jsonl")
        ]
        assert len(segments) == 3
        recovered = PrivacySystem.recover(directory, telemetry=Telemetry())
        assert system_digest(recovered) == system_digest(system)
