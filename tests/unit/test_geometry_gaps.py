"""Targeted tests for geometry helpers not covered elsewhere."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect, total_covered_area

BOUNDS = Rect(0, 0, 100, 100)


class TestShiftedInto:
    def test_already_inside_unchanged(self):
        r = Rect(10, 10, 20, 20)
        assert r.shifted_into(BOUNDS) == r

    def test_shifts_left_overhang(self):
        r = Rect(-5, 10, 5, 20)
        shifted = r.shifted_into(BOUNDS)
        assert shifted == Rect(0, 10, 10, 20)
        assert shifted.area == r.area

    def test_shifts_both_axes(self):
        r = Rect(95, -3, 105, 7)
        shifted = r.shifted_into(BOUNDS)
        assert shifted == Rect(90, 0, 100, 10)

    def test_covers_original_intersection(self):
        r = Rect(-8, -8, 4, 4)
        shifted = r.shifted_into(BOUNDS)
        original_part = r.intersection(BOUNDS)
        assert shifted.contains_rect(original_part)

    def test_oversized_axis_clipped(self):
        r = Rect(-50, 40, 150, 60)  # wider than the universe
        shifted = r.shifted_into(BOUNDS)
        assert BOUNDS.contains_rect(shifted)
        assert shifted.min_x == 0 and shifted.max_x == 100
        assert shifted.height == pytest.approx(20)

    def test_preserves_area_when_it_fits(self, rng):
        for _ in range(100):
            cx, cy = rng.uniform(-20, 120, 2)
            w, h = rng.uniform(1, 60, 2)
            r = Rect.from_center(Point(float(cx), float(cy)), float(w), float(h))
            if r.intersection(BOUNDS) is None:
                continue
            shifted = r.shifted_into(BOUNDS)
            assert BOUNDS.contains_rect(shifted)
            if w <= 100 and h <= 100:
                assert shifted.area == pytest.approx(r.area)


class TestTotalCoveredAreaMore:
    def test_grid_of_touching_squares(self):
        rects = [
            Rect(10 * i, 10 * j, 10 * (i + 1), 10 * (j + 1))
            for i in range(3)
            for j in range(3)
        ]
        assert total_covered_area(rects) == pytest.approx(900.0)

    def test_identical_rects_counted_once(self):
        rects = [Rect(0, 0, 5, 5)] * 4
        assert total_covered_area(rects) == pytest.approx(25.0)

    def test_degenerate_rects_contribute_nothing(self):
        rects = [Rect.from_point(Point(3, 3)), Rect(0, 0, 2, 2)]
        assert total_covered_area(rects) == pytest.approx(4.0)

    def test_cross_shape(self):
        rects = [Rect(0, 4, 10, 6), Rect(4, 0, 6, 10)]
        # 20 + 20 - 4 overlap
        assert total_covered_area(rects) == pytest.approx(36.0)


class TestRectEdgeBehaviours:
    def test_union_mbr_with_self(self):
        r = Rect(1, 2, 3, 4)
        assert r.union_mbr(r) == r

    def test_expanded_zero_is_identity(self):
        r = Rect(1, 2, 3, 4)
        assert r.expanded(0) == r

    def test_on_boundary_degenerate_rect(self):
        deg = Rect.from_point(Point(5, 5))
        assert deg.on_boundary(Point(5, 5))
        assert not deg.on_boundary(Point(5.1, 5))

    def test_scaled_to_area_zero_target(self):
        r = Rect(0, 0, 4, 4).scaled_to_area(0.0)
        assert r.area == 0.0
        assert r.center == Point(2, 2)

    def test_quadrants_of_degenerate_rect(self):
        deg = Rect.from_point(Point(1, 1))
        quads = deg.quadrants()
        assert all(q.area == 0.0 for q in quads)
