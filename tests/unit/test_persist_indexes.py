"""Round-trip serialization for all five spatial index backends.

The golden fixtures under ``tests/fixtures/persist_index_*.json`` pin
the ``repro.persist/1`` logical-state wire format: if serialisation
drifts, these tests fail before any stored checkpoint becomes
unreadable.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.pyramid import PyramidGrid
from repro.index.quadtree import QuadTree
from repro.index.rtree import RTree
from repro.persist import index_from_state, index_state

FIXTURES = os.path.join(os.path.dirname(__file__), "..", "fixtures")

BOUNDS = Rect(0.0, 0.0, 100.0, 100.0)
#: Insertion order is deliberately not sorted — the serialised entry
#: list must come out sorted regardless.
POINTS = [("b", 10.0, 20.0), ("a", 35.5, 60.25), ("d", 80.0, 5.0), ("c", 50.0, 50.0)]


def _fill_points(index):
    for item, x, y in POINTS:
        index.insert(item, Rect.from_point(Point(x, y)))
    return index


def _rtree():
    index = RTree(max_entries=4)
    for item, x, y in POINTS:
        index.insert(item, Rect.from_point(Point(x, y)))
    # Only the R-tree stores true rectangles (cloaked regions).
    index.insert("r1", Rect(5.0, 5.0, 25.0, 30.0))
    index.insert("r2", Rect(40.0, 40.0, 90.0, 95.0))
    return index


BACKENDS = {
    "rtree": _rtree,
    "grid": lambda: _fill_points(GridIndex(BOUNDS, cols=8, rows=8)),
    "kdtree": lambda: _fill_points(KDTree(rebuild_fraction=0.5)),
    "pyramid": lambda: _fill_points(PyramidGrid(BOUNDS, height=4)),
    "quadtree": lambda: _fill_points(QuadTree(BOUNDS, capacity=2, max_depth=6)),
}


def _entries_of(index) -> dict:
    return {str(item): index.geometry_of(item) for item in index}


@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestRoundTrip:
    def test_state_matches_golden_fixture(self, backend):
        """The serialised form is byte-stable against the pinned fixture."""
        state = index_state(BACKENDS[backend]())
        path = os.path.join(FIXTURES, f"persist_index_{backend}.json")
        with open(path, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        assert state == golden

    def test_rebuild_preserves_entries_and_params(self, backend):
        original = BACKENDS[backend]()
        state = index_state(original)
        rebuilt = index_from_state(state)
        assert type(rebuilt) is type(original)
        assert _entries_of(rebuilt) == _entries_of(original)
        # Construction parameters survive (serialise again, compare).
        assert index_state(rebuilt) == state

    def test_rebuilt_index_answers_queries(self, backend):
        rebuilt = index_from_state(index_state(BACKENDS[backend]()))
        window = Rect(0.0, 0.0, 60.0, 65.0)
        hits = set(rebuilt.range_query(window))
        assert {"a", "b", "c"} <= hits
        assert "d" not in hits

    def test_golden_fixture_rebuilds(self, backend):
        """A checkpoint written by any past version of this code (the
        fixture) must remain loadable."""
        path = os.path.join(FIXTURES, f"persist_index_{backend}.json")
        with open(path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
        rebuilt = index_from_state(state)
        assert _entries_of(rebuilt) == _entries_of(BACKENDS[backend]())


def test_entries_sorted_regardless_of_insertion_order():
    forward = KDTree()
    backward = KDTree()
    for item, x, y in POINTS:
        forward.insert(item, Rect.from_point(Point(x, y)))
    for item, x, y in reversed(POINTS):
        backward.insert(item, Rect.from_point(Point(x, y)))
    assert index_state(forward) == index_state(backward)


def test_empty_indexes_round_trip():
    for backend, build in BACKENDS.items():
        empty = type(build())
        if backend == "rtree":
            index = RTree(max_entries=4)
        elif backend == "grid":
            index = GridIndex(BOUNDS, cols=8, rows=8)
        elif backend == "kdtree":
            index = KDTree(rebuild_fraction=0.5)
        elif backend == "pyramid":
            index = PyramidGrid(BOUNDS, height=4)
        else:
            index = QuadTree(BOUNDS, capacity=2, max_depth=6)
        state = index_state(index)
        assert state["entries"] == []
        rebuilt = index_from_state(state)
        assert type(rebuilt) is empty
        assert _entries_of(rebuilt) == {}


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown index backend"):
        index_from_state({"backend": "btree", "params": {}, "entries": []})


def test_unserialisable_index_type_rejected():
    with pytest.raises(TypeError, match="unserialisable index type"):
        index_state(object())
