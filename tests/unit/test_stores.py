"""Unit tests for the server-side data stores."""

import pytest

from repro.core.errors import RegistrationError
from repro.core.stores import PrivateStore, PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class TestPublicStore:
    def test_add_and_lookup(self):
        store = PublicStore()
        store.add("gas", Point(3, 4))
        assert store.point_of("gas") == Point(3, 4)
        assert "gas" in store
        assert len(store) == 1

    def test_duplicate_add_raises(self):
        store = PublicStore()
        store.add("a", Point(0, 0))
        with pytest.raises(RegistrationError):
            store.add("a", Point(1, 1))

    def test_move(self):
        store = PublicStore()
        store.add("car", Point(0, 0))
        store.move("car", Point(10, 10))
        assert store.point_of("car") == Point(10, 10)
        assert store.range_query(Rect(9, 9, 11, 11)) == ["car"]
        assert store.range_query(Rect(-1, -1, 1, 1)) == []

    def test_move_unknown_raises(self):
        with pytest.raises(RegistrationError):
            PublicStore().move("ghost", Point(0, 0))

    def test_remove(self):
        store = PublicStore()
        store.add("a", Point(0, 0))
        store.remove("a")
        assert len(store) == 0
        with pytest.raises(RegistrationError):
            store.point_of("a")

    def test_remove_unknown_raises(self):
        with pytest.raises(RegistrationError):
            PublicStore().remove("ghost")

    def test_range_and_nearest(self, uniform_points_500):
        store = PublicStore()
        for i, p in enumerate(uniform_points_500):
            store.add(i, p)
        window = Rect(25, 25, 45, 60)
        expected = sorted(
            i for i, p in enumerate(uniform_points_500) if window.contains_point(p)
        )
        assert sorted(store.range_query(window)) == expected
        q = Point(50, 50)
        nearest = store.nearest(q, 3)
        brute = sorted(range(500), key=lambda i: uniform_points_500[i].distance_to(q))
        assert set(nearest) == set(brute[:3])

    def test_nearest_iter_sorted(self, uniform_points_500):
        store = PublicStore()
        for i, p in enumerate(uniform_points_500):
            store.add(i, p)
        dists = [d for _, d in zip(range(20), store.nearest_iter(Point(10, 90)))]
        dists = [d for _, d in list(store.nearest_iter(Point(10, 90)))[:20]]
        assert dists == sorted(dists)

    def test_items_iteration(self):
        store = PublicStore()
        store.add("x", Point(1, 2))
        assert list(store.items()) == [("x", Point(1, 2))]
        assert list(store) == ["x"]


class TestPrivateStore:
    def test_set_region_inserts_then_replaces(self):
        store = PrivateStore()
        store.set_region("u", Rect(0, 0, 10, 10))
        assert store.region_of("u") == Rect(0, 0, 10, 10)
        store.set_region("u", Rect(20, 20, 30, 30))
        assert store.region_of("u") == Rect(20, 20, 30, 30)
        assert len(store) == 1
        assert store.overlapping(Rect(0, 0, 15, 15)) == []
        assert store.overlapping(Rect(25, 25, 26, 26)) == ["u"]

    def test_overlapping_touches_count(self):
        store = PrivateStore()
        store.set_region("a", Rect(0, 0, 10, 10))
        assert store.overlapping(Rect(10, 10, 20, 20)) == ["a"]  # touching corner

    def test_remove(self):
        store = PrivateStore()
        store.set_region("a", Rect(0, 0, 1, 1))
        store.remove("a")
        assert "a" not in store
        with pytest.raises(RegistrationError):
            store.region_of("a")

    def test_remove_unknown_raises(self):
        with pytest.raises(RegistrationError):
            PrivateStore().remove("ghost")

    def test_degenerate_region_allowed(self):
        # A k=1 user is stored as her exact point (zero-area region).
        store = PrivateStore()
        store.set_region("open", Rect.from_point(Point(5, 5)))
        assert store.overlapping(Rect(4, 4, 6, 6)) == ["open"]

    def test_many_regions_query(self, rng):
        store = PrivateStore()
        regions = {}
        for i in range(200):
            cx, cy = rng.uniform(10, 90, 2)
            w, h = rng.uniform(1, 10, 2)
            r = Rect.from_center(Point(float(cx), float(cy)), float(w), float(h))
            regions[i] = r
            store.set_region(i, r)
        window = Rect(30, 30, 60, 60)
        expected = sorted(i for i, r in regions.items() if r.intersects(window))
        assert sorted(store.overlapping(window)) == expected
