"""Unit tests for continuous queries (incremental evaluation)."""

import pytest

from repro.core.errors import QueryError
from repro.core.stores import PrivateStore, PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.queries.continuous import (
    ContinuousCountMonitor,
    ContinuousPrivateRange,
    RangeDelta,
)

WINDOW = Rect(0, 0, 10, 10)


class TestContinuousCountMonitor:
    def test_updates_accumulate(self):
        monitor = ContinuousCountMonitor(WINDOW)
        delta = monitor.on_region_update("a", Rect(0, 0, 5, 5))  # inside: 1.0
        assert delta == pytest.approx(1.0)
        delta = monitor.on_region_update("b", Rect(-5, 0, 5, 5))  # half: 0.5
        assert delta == pytest.approx(0.5)
        assert monitor.expected_count == pytest.approx(1.5)

    def test_replacement_applies_difference(self):
        monitor = ContinuousCountMonitor(WINDOW)
        monitor.on_region_update("a", Rect(0, 0, 5, 5))
        delta = monitor.on_region_update("a", Rect(50, 50, 60, 60))
        assert delta == pytest.approx(-1.0)
        assert monitor.expected_count == pytest.approx(0.0)
        assert len(monitor.answer()) == 0

    def test_removal(self):
        monitor = ContinuousCountMonitor(WINDOW)
        monitor.on_region_update("a", Rect(0, 0, 5, 5))
        delta = monitor.on_object_removed("a")
        assert delta == pytest.approx(-1.0)
        assert monitor.expected_count == pytest.approx(0.0)

    def test_remove_unknown_is_noop(self):
        monitor = ContinuousCountMonitor(WINDOW)
        assert monitor.on_object_removed("ghost") == 0.0

    def test_matches_full_recompute_after_churn(self, rng):
        store = PrivateStore()
        monitor = ContinuousCountMonitor(WINDOW)
        for i in range(100):
            cx, cy = rng.uniform(-5, 20, 2)
            region = Rect.from_center(Point(float(cx), float(cy)), 4, 4)
            store.set_region(i, region)
            monitor.on_region_update(i, region)
        for _ in range(300):
            i = int(rng.integers(100))
            cx, cy = rng.uniform(-5, 20, 2)
            region = Rect.from_center(Point(float(cx), float(cy)), 4, 4)
            store.set_region(i, region)
            monitor.on_region_update(i, region)
        recomputed = monitor.recompute(store)
        assert monitor.expected_count == pytest.approx(recomputed.expected)
        assert monitor.answer().interval == recomputed.interval

    def test_seed_from_store(self):
        store = PrivateStore()
        store.set_region("in", Rect(1, 1, 2, 2))
        store.set_region("out", Rect(80, 80, 90, 90))
        monitor = ContinuousCountMonitor(WINDOW)
        monitor.seed_from_store(store)
        assert monitor.expected_count == pytest.approx(1.0)

    def test_updates_processed_counter(self):
        monitor = ContinuousCountMonitor(WINDOW)
        monitor.on_region_update("a", Rect(0, 0, 1, 1))
        monitor.on_object_removed("a")
        assert monitor.updates_processed == 2

    def test_answer_formats_available(self):
        monitor = ContinuousCountMonitor(WINDOW)
        monitor.on_region_update("a", Rect(0, 0, 5, 5))
        monitor.on_region_update("b", Rect(-5, 0, 5, 5))
        answer = monitor.answer()
        assert answer.interval == (1, 2)
        assert answer.pmf().sum() == pytest.approx(1.0)


class TestContinuousPrivateRange:
    @pytest.fixture
    def store(self, uniform_points_500):
        s = PublicStore()
        for i, p in enumerate(uniform_points_500):
            s.add(i, p)
        return s

    def test_first_update_joins_everything(self, store):
        query = ContinuousPrivateRange(store, radius=5.0)
        delta = query.on_region_update(Rect(40, 40, 50, 50))
        assert delta.left == ()
        assert set(delta.joined) == query.candidates

    def test_stationary_region_empty_delta(self, store):
        query = ContinuousPrivateRange(store, radius=5.0)
        query.on_region_update(Rect(40, 40, 50, 50))
        delta = query.on_region_update(Rect(40, 40, 50, 50))
        assert delta.is_empty

    def test_small_move_small_delta(self, store):
        query = ContinuousPrivateRange(store, radius=5.0)
        query.on_region_update(Rect(40, 40, 50, 50))
        delta = query.on_region_update(Rect(41, 40, 51, 50))
        assert delta.transmission_size < query.full_answer_cost + 5

    def test_client_view_consistent(self, store):
        from repro.queries.private_range import private_range_query

        query = ContinuousPrivateRange(store, radius=5.0)
        view: set = set()
        for region in [
            Rect(40, 40, 50, 50),
            Rect(42, 41, 52, 51),
            Rect(45, 45, 55, 55),
            Rect(10, 10, 20, 20),
        ]:
            delta = query.on_region_update(region)
            view |= set(delta.joined)
            view -= set(delta.left)
            snapshot = private_range_query(store, region, 5.0, "exact")
            assert view == set(snapshot.candidates)

    def test_public_update_refreshes(self, store):
        query = ContinuousPrivateRange(store, radius=5.0)
        query.on_region_update(Rect(40, 40, 50, 50))
        store.add("new-poi", Point(45, 45))
        delta = query.on_public_update("new-poi")
        assert "new-poi" in delta.joined

    def test_public_update_before_region_raises(self, store):
        query = ContinuousPrivateRange(store, radius=5.0)
        with pytest.raises(QueryError):
            query.on_public_update("whatever")

    def test_shipping_stats(self, store):
        query = ContinuousPrivateRange(store, radius=5.0)
        d1 = query.on_region_update(Rect(40, 40, 50, 50))
        d2 = query.on_region_update(Rect(60, 60, 70, 70))
        assert query.deltas_sent == 2
        assert query.objects_shipped == d1.transmission_size + d2.transmission_size


class TestRangeDelta:
    def test_sizes(self):
        delta = RangeDelta(joined=("a", "b"), left=("c",))
        assert delta.transmission_size == 3
        assert not delta.is_empty
        assert RangeDelta((), ()).is_empty
