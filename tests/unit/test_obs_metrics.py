"""Unit tests for the dependency-free metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_key,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_value_stays_int(self):
        c = Counter()
        c.inc(3)
        assert isinstance(c.value, int)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10.0)
        g.inc(2.5)
        g.dec(0.5)
        assert g.value == pytest.approx(12.0)


class TestHistogram:
    def test_empty_snapshot(self):
        h = Histogram()
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == 0.0

    def test_single_value_quantiles_collapse(self):
        h = Histogram()
        h.observe(7.0)
        assert h.quantile(0.5) == pytest.approx(7.0)
        assert h.quantile(0.99) == pytest.approx(7.0)
        assert h.min == 7.0 and h.max == 7.0

    def test_quantiles_are_ordered_and_bounded(self):
        h = Histogram()
        for v in range(1, 1001):
            h.observe(float(v))
        p50, p95, p99 = h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)
        assert h.min <= p50 <= p95 <= p99 <= h.max
        # Geometric buckets give coarse but sane estimates.
        assert 300 <= p50 <= 700
        assert p99 >= 900 * 0.5

    def test_mean_is_exact(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.mean == pytest.approx(2.5)
        assert h.count == 4

    def test_values_beyond_bucket_range_are_captured(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(10.0**9)
        assert h.count == 2
        assert h.max == pytest.approx(10.0**9)

    def test_default_buckets_monotone(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_same_name_and_labels_is_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", kind="nn")
        b = reg.counter("hits", kind="nn")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", kind="nn").inc()
        reg.counter("hits", kind="range").inc(2)
        snap = reg.snapshot()
        assert snap["counters"]["hits{kind=nn}"] == 1
        assert snap["counters"]["hits{kind=range}"] == 2

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_render_key_plain_and_labelled(self):
        assert render_key(("name", ())) == "name"
        assert render_key(("name", (("a", "1"), ("b", "2")))) == "name{a=1,b=2}"
