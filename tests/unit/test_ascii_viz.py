"""Unit tests for the ASCII visualisation helpers."""

import pytest

from repro.evalx.ascii_viz import density_map, overlay_regions, render_cloak_comparison
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)


class TestDensityMap:
    def test_dimensions(self):
        art = density_map([Point(50, 50)], BOUNDS, width=40, height=10)
        lines = art.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_empty_population_is_blank(self):
        art = density_map([], BOUNDS, width=10, height=4)
        assert set(art.replace("\n", "")) == {" "}

    def test_dense_cell_darker_than_sparse(self):
        points = [Point(10, 10)] * 50 + [Point(90, 90)]
        art = density_map(points, BOUNDS, width=10, height=10)
        lines = art.split("\n")
        # North-up: (10, 10) lands in cell (1, 1) = second line from the
        # bottom; (90, 90) in cell (9, 9) = the top line.
        assert lines[-2][1] == "@"
        assert lines[0][9] != " "
        assert lines[0][9] != "@"

    def test_north_up_orientation(self):
        art = density_map([Point(5, 95)], BOUNDS, width=10, height=10)
        lines = art.split("\n")
        assert lines[0].strip() != ""  # top row has the mark
        assert lines[-1].strip() == ""

    def test_out_of_bounds_points_skipped(self):
        art = density_map([Point(500, 500)], BOUNDS, width=5, height=5)
        assert set(art.replace("\n", "")) == {" "}

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            density_map([], BOUNDS, width=0)


class TestOverlay:
    def test_rectangle_outline_drawn(self):
        base = density_map([], BOUNDS, width=20, height=20)
        art = overlay_regions(base, [(Rect(20, 20, 80, 80), "#")], BOUNDS)
        assert "#" in art
        lines = art.split("\n")
        hash_rows = [i for i, line in enumerate(lines) if "#" in line]
        # A rectangle outline has hollow middle rows (only 2 # per row).
        middle = lines[(hash_rows[0] + hash_rows[-1]) // 2]
        assert middle.count("#") == 2

    def test_marker_drawn_last(self):
        base = density_map([], BOUNDS, width=20, height=20)
        art = overlay_regions(
            base,
            [(Rect(0, 0, 100, 100), "#")],
            BOUNDS,
            markers=[(Point(0, 0), "X")],
        )
        lines = art.split("\n")
        assert lines[-1][0] == "X"

    def test_disjoint_region_ignored(self):
        base = density_map([], BOUNDS, width=10, height=10)
        art = overlay_regions(base, [(Rect(200, 200, 300, 300), "#")], BOUNDS)
        assert "#" not in art


class TestComparison:
    def test_one_panel_per_algorithm(self):
        points = [Point(float(i), 50.0) for i in range(100)]
        art = render_cloak_comparison(
            points,
            Point(50, 50),
            [("naive", Rect(40, 40, 60, 60)), ("pyramid", Rect(50, 50, 75, 75))],
            BOUNDS,
            width=30,
            height=10,
        )
        assert "naive" in art and "pyramid" in art
        assert art.count("X") == 2
