"""Unit tests for the false-dummies baseline."""

import numpy as np
import pytest

from repro.cloaking.dummies import (
    DummyGenerator,
    dummy_posterior_size,
    reachability_filter,
)
from repro.core.errors import RegistrationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)


class TestDummyGeneration:
    def test_report_shape(self, rng):
        generator = DummyGenerator(BOUNDS, n_dummies=4, rng=rng)
        report = generator.report("u", Point(50, 50))
        assert report.n == 5
        assert report.true_location == Point(50, 50)
        assert report.locations[report.true_index] == Point(50, 50)

    def test_all_points_in_bounds(self, rng):
        generator = DummyGenerator(BOUNDS, n_dummies=6, rng=rng, consistent=True)
        for step in range(20):
            report = generator.report("u", Point(50 + step, 50))
            assert all(BOUNDS.contains_point(p) for p in report.locations)

    def test_true_index_varies(self, rng):
        generator = DummyGenerator(BOUNDS, n_dummies=3, rng=rng)
        indices = {generator.report("u", Point(1, 1)).true_index for _ in range(50)}
        assert len(indices) > 1

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            DummyGenerator(BOUNDS, n_dummies=0, rng=rng)
        generator = DummyGenerator(BOUNDS, n_dummies=2, rng=rng)
        with pytest.raises(RegistrationError):
            generator.report("u", Point(-5, 0))

    def test_consistent_dummies_move_plausibly(self, rng):
        generator = DummyGenerator(BOUNDS, n_dummies=3, rng=rng, consistent=True)
        first = generator.report("u", Point(50, 50))
        second = generator.report("u", Point(51, 50))  # user moved 1 unit
        prev_dummies = [
            p for i, p in enumerate(first.locations) if i != first.true_index
        ]
        new_dummies = [
            p for i, p in enumerate(second.locations) if i != second.true_index
        ]
        for dummy in new_dummies:
            assert any(dummy.distance_to(q) <= 1.0 + 1e-6 for q in prev_dummies)


class TestReachabilityAttack:
    def _trajectory(self, steps):
        return [Point(10.0 + step, 50.0) for step in range(steps)]

    def test_true_index_always_plausible(self, rng):
        for consistent in (False, True):
            generator = DummyGenerator(
                BOUNDS, n_dummies=4, rng=rng, consistent=consistent
            )
            reports = [generator.report("u", p) for p in self._trajectory(15)]
            plausible = reachability_filter(reports, max_speed=1.0, dt=1.0)
            for report, indices in zip(reports, plausible):
                assert report.true_index in indices

    def test_naive_dummies_get_filtered(self, rng):
        generator = DummyGenerator(BOUNDS, n_dummies=6, rng=rng, consistent=False)
        reports = [generator.report("u", p) for p in self._trajectory(20)]
        posterior = dummy_posterior_size(reports, max_speed=1.0, dt=1.0)
        assert posterior < 3.0  # most of the 7 points eliminated

    def test_consistent_dummies_survive(self, rng):
        generator = DummyGenerator(BOUNDS, n_dummies=6, rng=rng, consistent=True)
        reports = [generator.report("u", p) for p in self._trajectory(20)]
        posterior = dummy_posterior_size(reports, max_speed=1.05, dt=1.0)
        assert posterior > 5.0

    def test_empty_stream(self):
        assert reachability_filter([], 1.0, 1.0) == []
        with pytest.raises(ValueError):
            dummy_posterior_size([], 1.0, 1.0)

    def test_single_report_all_plausible(self, rng):
        generator = DummyGenerator(BOUNDS, n_dummies=3, rng=rng)
        reports = [generator.report("u", Point(5, 5))]
        assert reachability_filter(reports, 1.0, 1.0) == [{0, 1, 2, 3}]
