"""Unit tests for the vectorized bulk cloaking write path.

Covers the pieces the differential/property suites exercise only end to
end: kernel dispatch, escalation accounting, per-group aggregates and
their in-band degradation declarations, the ``cloak.bulk`` /
``regions.published_bulk`` event stream and its auditor folding, the
bulk store insert (STR rebuild vs per-item fallback), and the
window-count kernel the grid path relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloaking.grid_cloak import GridCloaker
from repro.cloaking.incremental import IncrementalCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.profiles import PrivacyProfile, PrivacyRequirement
from repro.core.stores import REBUILD_FRACTION, PrivateStore
from repro.core.system import PrivacySystem
from repro.engine import kernels
from repro.engine.cloak import bulk_cloak, group_stats, supports_kernel
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.users import MobileUser
from repro.obs import PrivacyAuditor, Telemetry
from repro.obs.events import CLOAK_BULK, REGIONS_PUBLISHED_BULK

BOUNDS = Rect(0.0, 0.0, 32.0, 32.0)


def grid_cloaker(n: int = 20) -> GridCloaker:
    cloaker = GridCloaker(BOUNDS, cols=8, rows=8)
    rng = np.random.default_rng(5)
    for i in range(n):
        cloaker.add_user(
            f"u{i}",
            Point(float(rng.uniform(0, 32)), float(rng.uniform(0, 32))),
        )
    return cloaker


def test_supports_kernel_dispatch():
    assert supports_kernel(GridCloaker(BOUNDS, cols=4, rows=4))
    assert supports_kernel(PyramidCloaker(BOUNDS, height=3))
    assert not supports_kernel(
        PyramidCloaker(BOUNDS, height=3, neighbor_merge=True)
    )
    from repro.cloaking.mbr import MBRCloaker

    assert not supports_kernel(MBRCloaker(BOUNDS))
    assert not supports_kernel(
        IncrementalCloaker(GridCloaker(BOUNDS, cols=4, rows=4))
    )


def test_no_privacy_users_get_exact_points():
    cloaker = grid_cloaker()
    outcome = bulk_cloak(cloaker, [("u0", PrivacyRequirement())])
    result = outcome.results["u0"]
    point = cloaker.location_of("u0")
    assert result.region == Rect.from_point(point)
    assert result.user_count == 1
    assert outcome.escalated == 0 and outcome.degraded == 0


def test_escalation_clamps_but_keeps_original_requirement():
    cloaker = grid_cloaker(n=10)
    requirement = PrivacyRequirement(k=500)
    outcome = bulk_cloak(cloaker, [("u0", requirement)])
    result = outcome.results["u0"]
    assert outcome.escalated == 1
    assert result.requirement is requirement  # original, not the clamp
    assert not result.k_satisfied  # 10 users can never look like 500
    assert outcome.degraded == 1  # and the miss is declared in-band


def test_scalar_fallback_matches_kernel_contract():
    cloaker = PyramidCloaker(BOUNDS, height=4, neighbor_merge=True)
    rng = np.random.default_rng(9)
    for i in range(15):
        cloaker.add_user(
            f"u{i}",
            Point(float(rng.uniform(0, 32)), float(rng.uniform(0, 32))),
        )
    outcome = bulk_cloak(cloaker, [(f"u{i}", PrivacyRequirement(k=4)) for i in range(15)])
    assert outcome.path == "scalar"
    assert len(outcome.results) == 15
    for result in outcome.results.values():
        assert result.user_count >= 4


def test_group_stats_aggregates_and_ordering():
    cloaker = grid_cloaker(n=30)
    requests = (
        [(f"u{i}", PrivacyRequirement(k=2)) for i in range(10)]
        + [(f"u{i}", PrivacyRequirement(k=5, min_area=4.0)) for i in range(10, 20)]
        + [(f"u{i}", PrivacyRequirement()) for i in range(20, 30)]
    )
    outcome = bulk_cloak(cloaker, requests)
    groups = outcome.groups
    assert [(g["k"], g["min_area"]) for g in groups] == [
        (1, 0.0), (2, 0.0), (5, 4.0),
    ]
    assert all(g["n"] == 10 for g in groups)
    for group in groups:
        assert group["fully_attained"] + group["degraded"] == group["n"]
        assert group["k_min"] <= group["k_sum"] / group["n"]
        assert group["area_min"] <= group["area_sum"] / group["n"] + 1e-9


def test_group_stats_counts_escalated_ids():
    results = {}
    cloaker = grid_cloaker(n=4)
    requirement = PrivacyRequirement(k=99)
    outcome = bulk_cloak(cloaker, [("u0", requirement), ("u1", requirement)])
    (group,) = outcome.groups
    assert group["escalated"] == 2
    assert outcome.escalated == 2
    assert not results  # sanity: untouched helper dict


def test_publish_all_bulk_emits_group_events_not_per_user():
    system = PrivacySystem(
        bounds=BOUNDS, cloaker=GridCloaker(BOUNDS, cols=8, rows=8)
    )
    rng = np.random.default_rng(2)
    for i in range(40):
        system.add_user(
            MobileUser(
                f"u{i}",
                Point(float(rng.uniform(0, 32)), float(rng.uniform(0, 32))),
                PrivacyProfile.always(k=3 if i % 2 else 6),
            )
        )
    system.publish_all(bulk=True)
    bulk_events = list(system.obs.events.events(CLOAK_BULK))
    assert len(bulk_events) == 2  # one per distinct requirement, not 40
    assert sum(e.attrs["n"] for e in bulk_events) == 40
    (published,) = list(system.obs.events.events(REGIONS_PUBLISHED_BULK))
    assert published.attrs["n"] == 40
    assert len(system.server.private) == 40


def test_auditor_folds_bulk_events_with_zero_undeclared():
    system = PrivacySystem(
        bounds=BOUNDS, cloaker=GridCloaker(BOUNDS, cols=8, rows=8)
    )
    rng = np.random.default_rng(4)
    for i in range(30):
        system.add_user(
            MobileUser(
                f"u{i}",
                Point(float(rng.uniform(0, 32)), float(rng.uniform(0, 32))),
                PrivacyProfile.always(k=int(rng.integers(1, 100))),
            )
        )
    system.publish_all(bulk=True)
    auditor = PrivacyAuditor.from_log(system.obs.events)
    report = auditor.report()
    assert report["totals"]["cloaks"] == 30
    assert report["totals"]["undeclared_violations"] == 0
    assert auditor.violations() == []
    # Misses exist (k up to 99 over 30 users) and are all declared.
    assert report["totals"]["degraded_declared"] > 0
    assert auditor.violations(declared=True)


def test_private_store_bulk_insert_rebuilds_and_matches_queries():
    store = PrivateStore()
    regions = {
        f"r{i}": Rect(float(i), 0.0, float(i + 2), 2.0) for i in range(20)
    }
    store.set_regions(regions)
    assert len(store) == 20
    assert store.version == 20
    window = Rect(0.0, 0.0, 5.0, 5.0)
    expected = sorted(
        object_id
        for object_id, region in regions.items()
        if region.intersects(window)
    )
    assert sorted(store.overlapping(window), key=str) == expected

    # A small batch (under REBUILD_FRACTION of the store) takes the
    # per-item path; results must be indistinguishable.
    small = {"r0": Rect(100.0, 100.0, 101.0, 101.0)}
    assert len(small) < REBUILD_FRACTION * len(store)
    store.set_regions(small)
    assert store.region_of("r0") == small["r0"]
    assert store.version == 21
    assert "r0" not in store.overlapping(window)


def test_private_store_bulk_insert_preserves_counters():
    store = PrivateStore()
    store.set_region("seed", Rect(0.0, 0.0, 1.0, 1.0))
    store.overlapping(Rect(0.0, 0.0, 2.0, 2.0))
    before = store.index_counters.snapshot()["range_queries"]
    store.set_regions(
        {f"r{i}": Rect(float(i), 0.0, float(i + 1), 1.0) for i in range(10)}
    )
    after = store.index_counters.snapshot()["range_queries"]
    assert after == before  # rebuild carried the counters over


def test_count_points_in_windows_inclusive_boundaries():
    xs = np.array([0.0, 1.0, 2.0, 3.0])
    ys = np.array([0.0, 1.0, 2.0, 3.0])
    windows = kernels.windows_array(
        [Rect(1.0, 1.0, 2.0, 2.0), Rect(10.0, 10.0, 11.0, 11.0)]
    )
    counts = kernels.count_points_in_windows(xs, ys, windows)
    assert counts.tolist() == [2, 0]  # both edge points count


def test_explain_bulk_cloak_plan_shape():
    from repro.obs import QueryExplainer

    system = PrivacySystem(
        bounds=BOUNDS,
        cloaker=GridCloaker(BOUNDS, cols=8, rows=8),
        telemetry=Telemetry(enabled=False),
    )
    rng = np.random.default_rng(6)
    for i in range(12):
        system.add_user(
            MobileUser(
                f"u{i}",
                Point(float(rng.uniform(0, 32)), float(rng.uniform(0, 32))),
                PrivacyProfile.always(k=3),
            )
        )
    plan = QueryExplainer(system.server).explain_bulk_cloak(
        system.anonymizer, t=0.0
    )
    assert plan.op == "bulk_cloak"
    assert plan.detail["users"] == 12
    assert plan.detail["path"] == "kernel"
    assert plan.find("cloak.group")
    assert plan.find("store.set_regions")


def test_bulk_cloak_population_override():
    cloaker = grid_cloaker(n=10)
    requirement = PrivacyRequirement(k=8)
    # Override pretends only 5 users exist: k=8 must escalate to 5.
    outcome = bulk_cloak(cloaker, [("u0", requirement)], population=5)
    assert outcome.escalated == 1
    assert outcome.results["u0"].requirement.k == 8
