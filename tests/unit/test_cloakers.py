"""Behavioural tests shared by all six cloaking algorithms, plus
algorithm-specific tests for each."""

import math

import numpy as np
import pytest

from repro.cloaking.grid_cloak import GridCloaker
from repro.cloaking.hilbert import HilbertCloaker, hilbert_d
from repro.cloaking.mbr import MBRCloaker
from repro.cloaking.naive import NaiveCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.cloaking.quadtree_cloak import QuadtreeCloaker
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)

ALL = [
    NaiveCloaker,
    MBRCloaker,
    QuadtreeCloaker,
    GridCloaker,
    PyramidCloaker,
    HilbertCloaker,
]


def load(cls, points, **kwargs):
    cloaker = cls(BOUNDS, **kwargs)
    for i, p in enumerate(points):
        cloaker.add_user(i, p)
    return cloaker


@pytest.mark.parametrize("cls", ALL)
class TestCommonContract:
    """Invariants every algorithm must satisfy (paper requirement 1)."""

    def test_region_contains_user(self, cls, uniform_points_500):
        cloaker = load(cls, uniform_points_500)
        for victim in (0, 123, 499):
            result = cloaker.cloak(victim, PrivacyRequirement(k=10))
            assert result.region.contains_point(uniform_points_500[victim])

    def test_region_inside_bounds(self, cls, uniform_points_500):
        cloaker = load(cls, uniform_points_500)
        result = cloaker.cloak(5, PrivacyRequirement(k=50))
        assert BOUNDS.contains_rect(result.region)

    def test_k_satisfied_uniform(self, cls, uniform_points_500):
        cloaker = load(cls, uniform_points_500)
        for k in (1, 5, 25, 100):
            result = cloaker.cloak(7, PrivacyRequirement(k=k))
            assert result.user_count >= k, f"{cls.__name__} k={k}"

    def test_k_satisfied_clustered(self, cls, clustered_points_500):
        cloaker = load(cls, clustered_points_500)
        for victim in (0, 250, 450):
            result = cloaker.cloak(victim, PrivacyRequirement(k=20))
            assert result.user_count >= 20

    def test_min_area_best_effort(self, cls, uniform_points_500):
        cloaker = load(cls, uniform_points_500)
        result = cloaker.cloak(11, PrivacyRequirement(k=5, min_area=50.0))
        assert result.region.area >= 50.0 - 1e-9

    def test_area_grows_with_k(self, cls, uniform_points_500):
        cloaker = load(cls, uniform_points_500)
        small = cloaker.cloak(42, PrivacyRequirement(k=5)).area
        large = cloaker.cloak(42, PrivacyRequirement(k=200)).area
        assert large >= small

    def test_cloak_after_movement(self, cls, uniform_points_500):
        cloaker = load(cls, uniform_points_500)
        cloaker.move_user(0, Point(77.7, 33.3))
        result = cloaker.cloak(0, PrivacyRequirement(k=15))
        assert result.region.contains_point(Point(77.7, 33.3))
        assert result.user_count >= 15

    def test_cloak_after_churn(self, cls, uniform_points_500, rng):
        cloaker = load(cls, uniform_points_500)
        for i in range(100):
            cloaker.remove_user(i)
        for i in range(500, 550):
            cloaker.add_user(
                i, Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            )
        result = cloaker.cloak(200, PrivacyRequirement(k=30))
        assert result.user_count >= 30


class TestNaive:
    def test_user_is_exact_center_when_unclipped(self, uniform_points_500):
        cloaker = load(NaiveCloaker, uniform_points_500)
        # Pick an interior user whose k-square does not hit the border.
        victim = next(
            i
            for i, p in enumerate(uniform_points_500)
            if 30 < p.x < 70 and 30 < p.y < 70
        )
        result = cloaker.cloak(victim, PrivacyRequirement(k=10))
        center = result.region.center
        true = uniform_points_500[victim]
        # This IS the flaw the paper describes: centre == user location.
        assert center.distance_to(true) < 1e-3

    def test_square_is_minimal_for_k(self, uniform_points_500):
        cloaker = load(NaiveCloaker, uniform_points_500)
        victim = 42
        result = cloaker.cloak(victim, PrivacyRequirement(k=20))
        assert result.user_count >= 20
        # Shrinking by 1% must drop below k (minimality up to precision).
        shrunk = result.region.expanded(-0.01 * result.region.width)
        assert cloaker.count_in(shrunk) < 20 or shrunk.area == 0

    def test_amax_capped_when_amin_forced_growth(self, uniform_points_500):
        cloaker = load(NaiveCloaker, uniform_points_500)
        req = PrivacyRequirement(k=2, min_area=900.0, max_area=400.0)
        result = cloaker.cloak(0, req)
        # Contradictory profile: k wins, A_max wins over A_min.
        assert result.user_count >= 2

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            NaiveCloaker(BOUNDS, precision=0)


class TestMBR:
    def test_region_is_knn_mbr(self, uniform_points_500):
        cloaker = load(MBRCloaker, uniform_points_500)
        victim = 7
        k = 12
        result = cloaker.cloak(victim, PrivacyRequirement(k=k))
        group = cloaker.k_nearest_points(uniform_points_500[victim], k)
        assert result.region == Rect.from_points(group)

    def test_some_user_on_each_edge(self, uniform_points_500):
        """The leakage the paper describes: the MBR touches k-group points."""
        cloaker = load(MBRCloaker, uniform_points_500)
        result = cloaker.cloak(3, PrivacyRequirement(k=8))
        r = result.region
        users_on_boundary = [
            u
            for u in cloaker.users_in(r)
            if r.on_boundary(cloaker.location_of(u), tolerance=1e-9)
        ]
        assert len(users_on_boundary) >= 2

    def test_padding_strictly_contains_raw_mbr(self, uniform_points_500):
        raw = load(MBRCloaker, uniform_points_500)
        padded = load(MBRCloaker, uniform_points_500, pad_fraction=0.2)
        r_raw = raw.cloak(9, PrivacyRequirement(k=10)).region
        r_pad = padded.cloak(9, PrivacyRequirement(k=10)).region
        assert r_pad.contains_rect(r_raw.intersection(r_pad))
        assert r_pad.area > r_raw.area

    def test_k_nearest_includes_self(self, uniform_points_500):
        cloaker = load(MBRCloaker, uniform_points_500)
        p = uniform_points_500[0]
        assert p in cloaker.k_nearest_points(p, 5)

    def test_invalid_pad(self):
        with pytest.raises(ValueError):
            MBRCloaker(BOUNDS, pad_fraction=-0.1)


class TestQuadtreeCloaker:
    def test_region_is_a_quadtree_node(self, uniform_points_500):
        cloaker = load(QuadtreeCloaker, uniform_points_500, capacity=4, max_depth=8)
        result = cloaker.cloak(0, PrivacyRequirement(k=10))
        # The region must appear on the victim's node path.
        path_rects = [
            rect for rect, _ in cloaker._tree.node_path(uniform_points_500[0])
        ]
        assert result.region in path_rects

    def test_region_independent_of_position_within_leaf(self, uniform_points_500):
        cloaker = load(QuadtreeCloaker, uniform_points_500, capacity=8)
        req = PrivacyRequirement(k=50)
        r1 = cloaker.cloak(0, req).region
        # Nudge the user within a tiny neighbourhood (same leaf w.h.p.).
        p = uniform_points_500[0]
        cloaker.move_user(0, Point(p.x + 1e-9, p.y))
        r2 = cloaker.cloak(0, req).region
        assert r1 == r2

    def test_count_in_uses_tree(self, uniform_points_500):
        cloaker = load(QuadtreeCloaker, uniform_points_500)
        window = Rect(10, 10, 60, 60)
        expected = sum(
            1 for p in uniform_points_500 if window.contains_point(p)
        )
        assert cloaker.count_in(window) == expected


class TestGridCloaker:
    def test_single_cell_when_dense_enough(self, clustered_points_500):
        cloaker = load(GridCloaker, clustered_points_500, cols=8)
        # Find a user in the dense cluster near (20, 20).
        victim = min(
            range(500),
            key=lambda i: clustered_points_500[i].distance_to(Point(20, 20)),
        )
        result = cloaker.cloak(victim, PrivacyRequirement(k=5))
        cell_area = (100 / 8) ** 2
        assert result.region.area == pytest.approx(cell_area)

    def test_merges_toward_users(self, uniform_points_500):
        cloaker = load(GridCloaker, uniform_points_500, cols=32)
        result = cloaker.cloak(0, PrivacyRequirement(k=40))
        assert result.user_count >= 40
        # The merged block is aligned to the grid.
        cell = 100 / 32
        for coord in result.region.as_tuple():
            assert abs(coord / cell - round(coord / cell)) < 1e-9

    def test_whole_grid_fallback(self, uniform_points_500):
        cloaker = load(GridCloaker, uniform_points_500, cols=4)
        result = cloaker.cloak(0, PrivacyRequirement(k=500))
        assert result.region == BOUNDS
        assert result.user_count == 500


class TestPyramidCloaker:
    def test_region_is_pyramid_cell(self, uniform_points_500):
        cloaker = load(PyramidCloaker, uniform_points_500, height=6)
        result = cloaker.cloak(0, PrivacyRequirement(k=10))
        assert cloaker.pyramid.cell_for_rect(result.region) is not None

    def test_top_down_equals_bottom_up(self, uniform_points_500):
        up = load(PyramidCloaker, uniform_points_500, height=6, bottom_up=True)
        down = load(PyramidCloaker, uniform_points_500, height=6, bottom_up=False)
        for victim in (0, 100, 250, 499):
            for k in (2, 10, 60):
                req = PrivacyRequirement(k=k)
                assert up.cloak(victim, req).region == down.cloak(victim, req).region

    def test_neighbor_merge_never_larger(self, clustered_points_500):
        plain = load(PyramidCloaker, clustered_points_500, height=6)
        merged = load(
            PyramidCloaker, clustered_points_500, height=6, neighbor_merge=True
        )
        req = PrivacyRequirement(k=25)
        for victim in range(0, 500, 25):
            a = plain.cloak(victim, req).area
            b = merged.cloak(victim, req).area
            assert b <= a + 1e-9

    def test_neighbor_merge_still_satisfies_k(self, clustered_points_500):
        merged = load(
            PyramidCloaker, clustered_points_500, height=6, neighbor_merge=True
        )
        for victim in range(0, 500, 50):
            result = merged.cloak(victim, PrivacyRequirement(k=25))
            assert result.user_count >= 25

    def test_probe_stats_recorded(self, uniform_points_500):
        cloaker = load(PyramidCloaker, uniform_points_500, height=6)
        cloaker.cloak(0, PrivacyRequirement(k=10))
        assert cloaker.stats.extra.get("probes", 0) > 0


class TestHilbertCurve:
    def test_hilbert_d_bijective_order_3(self):
        side = 8
        indices = {hilbert_d(3, x, y) for x in range(side) for y in range(side)}
        assert indices == set(range(side * side))

    def test_hilbert_d_adjacent_cells_are_neighbours(self):
        # Consecutive curve indices map to grid-adjacent cells.
        side = 16
        by_index = {}
        for x in range(side):
            for y in range(side):
                by_index[hilbert_d(4, x, y)] = (x, y)
        for d in range(side * side - 1):
            (x1, y1), (x2, y2) = by_index[d], by_index[d + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            hilbert_d(0, 0, 0)
        with pytest.raises(ValueError):
            hilbert_d(2, 4, 0)


class TestHilbertCloaker:
    def test_bucket_members_share_region(self, uniform_points_500):
        cloaker = load(HilbertCloaker, uniform_points_500)
        req = PrivacyRequirement(k=10)
        victim = 17
        bucket = cloaker.bucket_of(victim, 10)
        assert victim in bucket
        assert len(bucket) >= 10
        region = cloaker.cloak(victim, req).region
        for member in bucket:
            assert cloaker.cloak(member, req).region == region

    def test_buckets_partition_population(self, uniform_points_500):
        cloaker = load(HilbertCloaker, uniform_points_500)
        seen = set()
        for uid in range(500):
            bucket = frozenset(cloaker.bucket_of(uid, 7))
            seen.add(bucket)
        assert sum(len(b) for b in seen) == 500
        assert all(len(b) >= 7 for b in seen)

    def test_tiny_population_single_bucket(self):
        cloaker = HilbertCloaker(BOUNDS)
        for i in range(3):
            cloaker.add_user(i, Point(10.0 * i + 5, 50))
        assert set(cloaker.bucket_of(0, 3)) == {0, 1, 2}

    def test_sort_invalidated_on_move(self, uniform_points_500):
        cloaker = load(HilbertCloaker, uniform_points_500)
        req = PrivacyRequirement(k=5)
        cloaker.cloak(0, req)
        cloaker.move_user(0, Point(99, 99))
        result = cloaker.cloak(0, req)
        assert result.region.contains_point(Point(99, 99))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            HilbertCloaker(BOUNDS, order=0)
