"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.geometry.point import Point, centroid


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, -7.1)
        assert p.distance_to(p) == 0.0

    def test_distance_is_symmetric(self):
        a, b = Point(1, 2), Point(-3, 9)
        assert a.distance_to(b) == b.distance_to(a)

    def test_squared_distance_matches_distance(self):
        a, b = Point(1.5, 2.0), Point(4.0, -1.0)
        assert a.squared_distance_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance_to(Point(3, -4)) == 7.0

    def test_translated(self):
        assert Point(1, 1).translated(2, -3) == Point(3, -2)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_as_tuple_and_iter(self):
        p = Point(1.0, 2.0)
        assert p.as_tuple() == (1.0, 2.0)
        assert tuple(p) == (1.0, 2.0)

    def test_points_are_hashable_and_equal_by_value(self):
        assert Point(1, 2) == Point(1, 2)
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    def test_points_are_immutable(self):
        with pytest.raises(AttributeError):
            Point(1, 2).x = 5  # type: ignore[misc]


class TestCentroid:
    def test_single_point(self):
        assert centroid([Point(3, 4)]) == Point(3, 4)

    def test_square_corners(self):
        pts = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(pts) == Point(1, 1)

    def test_accepts_generators(self):
        assert centroid(Point(i, 0) for i in range(5)) == Point(2, 0)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            centroid([])

    def test_mean_of_collinear_points(self):
        pts = [Point(x, 2 * x) for x in (1.0, 2.0, 3.0)]
        c = centroid(pts)
        assert c.x == pytest.approx(2.0)
        assert c.y == pytest.approx(4.0)
        assert math.isclose(c.y, 2 * c.x)
