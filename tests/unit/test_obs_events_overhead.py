"""Event emission must cost < 5 % of real query work on the hot path.

The ISSUE 5 acceptance bar: running a 10k-query microloop with the event
ring enabled (JSONL sink off) adds < 5 % over the same loop with no
event calls at all.  An enabled emit is one dict build, one dataclass
construction and a deque append; a real range query is tens of
microseconds of index work, so the ratio holds with a wide noise margin.
"""

import time

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.index.rtree import RTree
from repro.obs import EventLog

QUERIES = 10_000
REPEATS = 5


@pytest.fixture(scope="module")
def workload():
    """An R-tree of 2000 points plus the 10k query windows to run."""
    rng = np.random.default_rng(11)
    tree = RTree()
    for i in range(2000):
        x, y = rng.uniform(0, 100, 2)
        tree.insert_point(i, Point(float(x), float(y)))
    windows = []
    for _ in range(QUERIES):
        x, y = rng.uniform(0, 80, 2)
        windows.append(Rect(float(x), float(y), float(x) + 20.0, float(y) + 20.0))
    return tree, windows


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_enabled_event_emission_overhead_under_5_percent(workload):
    """Per-event emit cost (ring on, sink off) vs per-query index work.

    Same methodology as the tracing gate: measure the two per-iteration
    costs separately, each best-of-N, instead of racing two ~second-long
    wall times against CI clock noise.
    """
    tree, windows = workload
    log = EventLog(keep=2048)  # ring on, no registry, no JSONL sink

    def queries():
        for window in windows:
            tree.range_query(window)

    def emits_only():
        for i in range(QUERIES):
            log.emit("query.completed", query="private_range", i=i, overhead=2.0)

    queries()
    emits_only()
    query_cost = min(_timed(queries) for _ in range(REPEATS)) / QUERIES
    emit_cost = min(_timed(emits_only) for _ in range(REPEATS)) / QUERIES
    overhead = emit_cost / query_cost
    assert overhead < 0.05, (
        f"enabled emit costs {emit_cost * 1e9:.0f}ns = "
        f"{overhead * 100:.2f}% of a {query_cost * 1e6:.1f}us query"
    )


def test_disabled_event_log_records_nothing(workload):
    tree, windows = workload
    log = EventLog(enabled=False)
    for window in windows[:100]:
        tree.range_query(window)
        assert log.emit("query.completed", query="private_range") is None
    assert len(log) == 0
    assert log.counts() == {}
