"""Crash-injection harness for the durability suite.

Drives a :class:`~repro.core.system.PrivacySystem` through a declarative
op list (JSON-able tuples, so hypothesis can generate them) with the WAL
attached, then simulates crashes two ways:

* **post-hoc truncation** — cut ``wal.jsonl`` back to the sequence
  number recorded at an arbitrary op boundary, exactly what a process
  kill between two ops leaves behind;
* **live sink crash** — :class:`CrashingSink` kills the pipeline in the
  middle of a WAL append, leaving a torn final line.

The equivalence yardstick is :func:`repro.persist.system_digest`: a
recovery from the cut trail must equal a fresh uncrashed run of the
same op prefix.
"""

from __future__ import annotations

import json
import os

from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.errors import QueryError, RegistrationError
from repro.core.profiles import PrivacyProfile
from repro.core.system import PrivacySystem
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.users import MobileUser, UserMode
from repro.obs import Telemetry
from repro.persist.checkpoint import WAL_NAME
from repro.queries.spec import KNNSpec, NNSpec, RangeSpec

BOUNDS = Rect(0.0, 0.0, 100.0, 100.0)


class SimulatedCrash(Exception):
    """Raised by :class:`CrashingSink` at the injected kill point."""


class CrashingSink:
    """A WAL sink that dies mid-write on the N-th event record.

    Writes ``write_cut`` characters of the fatal record (0 = crash just
    before the append, mimicking a kill between two writes; a positive
    cut leaves a torn line, mimicking a kill mid-``write``), flushes what
    made it out, and raises :class:`SimulatedCrash`.
    """

    def __init__(self, path: str, crash_on_write: int, write_cut: int = 0) -> None:
        self._handle = open(path, "a", encoding="utf-8", buffering=1)
        self.crash_on_write = crash_on_write
        self.write_cut = write_cut
        self.writes = 0

    def write(self, text: str) -> int:
        self.writes += 1
        if self.writes == self.crash_on_write:
            self._handle.write(text[: self.write_cut])
            self._handle.flush()
            self._handle.close()
            raise SimulatedCrash(f"killed on WAL write #{self.writes}")
        return self._handle.write(text)

    def flush(self) -> None:
        if not self._handle.closed:
            self._handle.flush()


def build_system(
    directory: str | None = None, *, rotate: bool = False
) -> PrivacySystem:
    """A fresh pyramid-cloaked system; WAL-attached when given a directory."""
    system = PrivacySystem(
        BOUNDS,
        PyramidCloaker(BOUNDS, height=5),
        rotate_pseudonyms=rotate,
        telemetry=Telemetry(),
    )
    if directory is not None:
        system.attach_wal(directory)
    return system


def apply_op(system: PrivacySystem, op: tuple, directory: str | None) -> None:
    """Apply one declarative op; benign op-level errors are no-ops.

    The error swallowing is deterministic — a generated op that targets
    a passive user fails identically in the durable run, the reference
    run, and replay, so equivalence is unaffected.
    """
    kind = op[0]
    try:
        if kind == "poi":
            system.add_poi(op[1], Point(op[2], op[3]))
        elif kind == "poi_move":
            system.server.move_public_object(op[1], Point(op[2], op[3]))
        elif kind == "poi_remove":
            system.server.remove_public_object(op[1])
        elif kind == "user":
            _, user_id, x, y, k, min_area = op
            system.add_user(
                MobileUser(
                    user_id,
                    Point(x, y),
                    PrivacyProfile.always(k=k, min_area=min_area),
                )
            )
        elif kind == "move":
            system.apply_movement(
                {user_id: Point(x, y) for user_id, x, y in op[1]}
            )
        elif kind == "publish":
            system.publish_all()
        elif kind == "publish_bulk":
            system.publish_all(bulk=True)
        elif kind == "range":
            system.query(RangeSpec(flavor="private", user=op[1], radius=op[2]))
        elif kind == "nn":
            system.query(NNSpec(flavor="private", user=op[1]))
        elif kind == "knn":
            system.query(KNNSpec(flavor="private", user=op[1], k=op[2]))
        elif kind == "monitor":
            system.server.register_count_monitor(
                op[1], Rect(op[2], op[3], op[4], op[5])
            )
        elif kind == "mode":
            system.set_mode(op[1], UserMode(op[2]))
        elif kind == "profile":
            system.anonymizer.update_profile(op[1], PrivacyProfile.always(k=op[2]))
        elif kind == "checkpoint":
            if directory is not None:
                system.checkpoint(directory)
        else:  # pragma: no cover - malformed generator
            raise ValueError(f"unknown op kind: {kind!r}")
    except (RegistrationError, QueryError, KeyError):
        pass


def run_ops(
    system: PrivacySystem, ops: list[tuple], directory: str | None
) -> list[int]:
    """Apply every op; returns the WAL seq reached after each one."""
    seqs: list[int] = []
    for op in ops:
        apply_op(system, op, directory)
        seqs.append(system.obs.events._seq)
    return seqs


def reference_digest(ops: list[tuple]) -> dict:
    """Digest of an uncrashed, WAL-less run of ``ops`` (checkpoints no-op)."""
    from repro.persist import system_digest

    system = build_system(None)
    run_ops(system, ops, None)
    return system_digest(system)


def wal_path(directory: str) -> str:
    return os.path.join(directory, WAL_NAME)


def truncate_wal_to_seq(directory: str, seq: int) -> None:
    """Cut the WAL back to records with ``seq`` at most the given bound —
    the on-disk state a kill at that op boundary leaves behind."""
    path = wal_path(directory)
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    kept = [
        line
        for line in lines
        if line.strip() and json.loads(line)["seq"] <= seq
    ]
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(kept)


def tear_final_line(directory: str, keep_chars: int = 20) -> None:
    """Replace the WAL's final record with a partial (torn) write."""
    path = wal_path(directory)
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    assert lines, "cannot tear an empty WAL"
    lines[-1] = lines[-1][:keep_chars]
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines)


def small_workload(checkpoint_after: int | None = 8) -> list[tuple]:
    """A deterministic mixed workload touching every replayed op kind."""
    ops: list[tuple] = [
        ("poi", "p0", 10.0, 10.0),
        ("poi", "p1", 50.0, 55.0),
        ("poi", "p2", 80.0, 20.0),
        ("poi", "p3", 30.0, 85.0),
        ("user", "u0", 20.0, 20.0, 3, 0.0),
        ("user", "u1", 25.0, 22.0, 2, 4.0),
        ("user", "u2", 70.0, 70.0, 3, 0.0),
        ("user", "u3", 72.0, 68.0, 2, 0.0),
        ("user", "u4", 40.0, 45.0, 4, 0.0),
        ("publish",),
        ("monitor", "m0", 10.0, 10.0, 60.0, 60.0),
        ("range", "u0", 30.0),
        ("move", [("u0", 22.0, 24.0), ("u2", 68.0, 71.0), ("u4", 42.0, 44.0)]),
        ("nn", "u2"),
        ("publish_bulk",),
        ("knn", "u1", 2),
        ("profile", "u3", 4),
        ("poi_move", "p1", 52.0, 53.0),
        ("mode", "u4", "passive"),
        ("publish",),
        ("poi_remove", "p0"),
        ("range", "u3", 25.0),
        ("mode", "u4", "active"),
        ("publish_bulk",),
        ("nn", "u0"),
    ]
    if checkpoint_after is not None:
        ops.insert(checkpoint_after, ("checkpoint",))
    return ops
