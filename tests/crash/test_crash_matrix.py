"""The crash matrix: kill the pipeline at arbitrary event boundaries.

Each scenario damages a real durability directory the way a specific
crash would, recovers, and asserts the recovered system is equivalent
to an uncrashed run of the surviving prefix — by canonical state
digest, by oracle-validated query answers, and by recover-twice
idempotence.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.system import PrivacySystem
from repro.engine.oracle import BruteForceOracle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import Telemetry
from repro.persist import (
    Recovery,
    RecoveryError,
    list_checkpoints,
    system_digest,
)

from harness import (
    CrashingSink,
    SimulatedCrash,
    build_system,
    reference_digest,
    run_ops,
    small_workload,
    tear_final_line,
    truncate_wal_to_seq,
    wal_path,
)

CHECKPOINT_AT = 8


def _recover(directory, **kwargs) -> PrivacySystem:
    return PrivacySystem.recover(directory, telemetry=Telemetry(), **kwargs)


def _durable_run(tmp_path, ops):
    directory = str(tmp_path / "state")
    os.makedirs(directory)
    system = build_system(directory)
    seqs = run_ops(system, ops, directory)
    system.obs.events.detach_jsonl()
    return directory, system, seqs


def _assert_probe_queries_valid(system: PrivacySystem) -> None:
    """The recovered server answers match a brute-force oracle over its
    own (recovered) tables — structural validity, not just digest bits."""
    oracle = BruteForceOracle.from_server(system.server)
    window = Rect(15.0, 15.0, 75.0, 75.0)
    assert set(system.server.public_range_over_public(window)) == set(
        oracle.public_range(window)
    )
    if len(system.server.public):
        probe = Point(33.0, 41.0)
        answer = system.server.public_nn_over_public(probe, k=2)
        assert oracle.validate_knn(answer, probe, 2)
    count = system.server.public_count(window)
    reference = oracle.public_count(window)
    assert count.expected == pytest.approx(reference.expected)
    assert count.interval == reference.interval


def test_crash_at_every_post_checkpoint_boundary(tmp_path):
    """Kill between any two ops after the checkpoint: recovery rebuilds
    exactly the uncrashed prefix, at every single boundary."""
    ops = small_workload(checkpoint_after=CHECKPOINT_AT)
    directory, _, seqs = _durable_run(tmp_path, ops)
    wal = wal_path(directory)
    with open(wal, "r", encoding="utf-8") as handle:
        full_wal = handle.read()
    for boundary in range(CHECKPOINT_AT, len(ops)):
        with open(wal, "w", encoding="utf-8") as handle:
            handle.write(full_wal)
        truncate_wal_to_seq(directory, seqs[boundary])
        recovered = _recover(directory)
        assert system_digest(recovered) == reference_digest(ops[: boundary + 1]), (
            f"digest mismatch after crash at op boundary {boundary} "
            f"({ops[boundary][0]!r})"
        )
    _assert_probe_queries_valid(recovered)


def test_torn_final_wal_line_is_tolerated(tmp_path):
    """A kill mid-append leaves a partial record; recovery drops exactly
    that record and rebuilds the state before it."""
    ops = small_workload(checkpoint_after=CHECKPOINT_AT)
    directory, _, seqs = _durable_run(tmp_path, ops)
    truncate_wal_to_seq(directory, seqs[-2])
    tear_final_line(directory, keep_chars=25)
    recovered = _recover(directory)
    # The torn record was the last one of op -2, so the surviving state
    # is the prefix through op -3.
    assert system_digest(recovered) == reference_digest(ops[:-2])


def test_live_sink_crash_mid_write(tmp_path):
    """Kill the pipeline *during* a WAL write via the crashing sink; the
    torn trail recovers to a consistent, idempotently-recoverable state."""
    directory = str(tmp_path / "state")
    os.makedirs(directory)
    ops = small_workload(checkpoint_after=CHECKPOINT_AT)
    system = build_system(directory)
    system.obs.events.detach_jsonl()
    sink = CrashingSink(wal_path(directory), crash_on_write=40, write_cut=17)
    system.obs.events.attach_jsonl(sink)
    with pytest.raises(SimulatedCrash):
        run_ops(system, ops, directory)
    once = _recover(directory)
    twice = _recover(directory)
    # A mid-write kill lands *inside* an op, so the recovered state is an
    # event-prefix (not an op-prefix): assert determinism + consistency.
    assert system_digest(once) == system_digest(twice)
    registrations = once.anonymizer._registrations
    assert set(registrations) <= set(once.users)
    published = sum(1 for r in registrations.values() if r.published)
    assert len(once.server.private) == len(
        {r.pseudonym for r in registrations.values() if r.published}
    ) == published
    _assert_probe_queries_valid(once)


def test_checkpoint_tmp_orphan_is_ignored(tmp_path):
    """A kill mid-checkpoint-write leaves ``<name>.json.tmp``; the scan
    never considers it and recovery uses the previous good checkpoint."""
    ops = small_workload(checkpoint_after=CHECKPOINT_AT)
    directory, live, _ = _durable_run(tmp_path, ops)
    orphan = os.path.join(
        directory, "checkpoint-999999999999.json.tmp"
    )
    with open(orphan, "w", encoding="utf-8") as handle:
        handle.write('{"schema": "repro.persist/1", "wal_seq": 99')  # torn
    assert all(p.suffix == ".json" for p in list_checkpoints(directory))
    recovered = _recover(directory)
    assert system_digest(recovered) == system_digest(live)


def test_corrupt_newest_checkpoint_falls_back(tmp_path):
    """An unreadable newest checkpoint is skipped in favour of the older
    good one, and the skip is reported."""
    ops = small_workload(checkpoint_after=CHECKPOINT_AT)
    directory, live, seqs = _durable_run(tmp_path, ops)
    bad = os.path.join(directory, f"checkpoint-{seqs[-1] + 1:012d}.json")
    with open(bad, "w", encoding="utf-8") as handle:
        handle.write('{"schema": "repro.persist/1", "wal_seq":')  # torn JSON
    recovery = Recovery(directory, telemetry=Telemetry())
    recovered = recovery.recover()
    assert system_digest(recovered) == system_digest(live)
    assert recovery.report["unreadable_checkpoints"]
    assert os.path.basename(bad) in recovery.report["unreadable_checkpoints"][0]


def test_cold_start_from_wal_alone(tmp_path):
    """No checkpoint was ever written: the wal-meta sidecar plus a full
    replay still rebuild the whole system."""
    ops = small_workload(checkpoint_after=None)
    directory, live, _ = _durable_run(tmp_path, ops)
    assert not list_checkpoints(directory)
    recovered = _recover(directory)
    assert system_digest(recovered) == system_digest(live)


def test_recover_twice_is_idempotent(tmp_path):
    """Recovery only reads: a second recovery of the same directory gives
    the same system, and the directory still recovers after that."""
    ops = small_workload(checkpoint_after=CHECKPOINT_AT)
    directory, live, _ = _durable_run(tmp_path, ops)
    first = _recover(directory)
    second = _recover(directory)
    assert system_digest(first) == system_digest(second) == system_digest(live)


def test_interior_wal_hole_refuses_recovery(tmp_path):
    """A missing *middle* record is silent data loss, not a crash tail:
    strict recovery refuses, best-effort mode proceeds."""
    ops = small_workload(checkpoint_after=None)
    directory, _, _ = _durable_run(tmp_path, ops)
    wal = wal_path(directory)
    with open(wal, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    del lines[len(lines) // 2]
    with open(wal, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    with pytest.raises(RecoveryError, match="sequence hole"):
        _recover(directory)
    recovered = _recover(directory, allow_gaps=True)
    assert len(recovered.users) > 0


def test_declared_ring_truncation_refuses_recovery(tmp_path):
    """A ``log.truncated`` marker in the trail (ring evicted unflushed
    events) blocks strict recovery with an explanatory error."""
    ops = small_workload(checkpoint_after=None)
    directory, _, _ = _durable_run(tmp_path, ops)
    wal = wal_path(directory)
    marker = {
        "kind": "log.truncated",
        "seq": 3,
        "first_seq": 3,
        "last_seq": 7,
        "lost": 5,
        "flushed_seq": 2,
    }
    with open(wal, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    lines.insert(2, json.dumps(marker) + "\n")
    with open(wal, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    with pytest.raises(RecoveryError, match="declared truncation"):
        _recover(directory)


def test_wal_tail_behind_checkpoint_refuses_recovery(tmp_path):
    """A WAL whose tail starts past checkpoint_seq + 1 (rotated away)
    cannot prove continuity and is refused."""
    ops = small_workload(checkpoint_after=CHECKPOINT_AT)
    directory, _, seqs = _durable_run(tmp_path, ops)
    checkpoint_seq = int(
        list_checkpoints(directory)[-1].stem.split("-")[1]
    )
    wal = wal_path(directory)
    with open(wal, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    kept = [
        line
        for line in lines
        if json.loads(line)["seq"] > checkpoint_seq + 3
    ]
    with open(wal, "w", encoding="utf-8") as handle:
        handle.writelines(kept)
    with pytest.raises(RecoveryError, match="missing"):
        _recover(directory)


def test_recovered_system_keeps_working(tmp_path):
    """Post-recovery, the system is not a museum piece: it cloaks,
    publishes, answers private queries, and can checkpoint again."""
    ops = small_workload(checkpoint_after=CHECKPOINT_AT)
    directory, _, _ = _durable_run(tmp_path, ops)
    recovered = _recover(directory)
    from repro.queries.spec import RangeSpec

    recovered.publish_all()
    outcome, answer = recovered.query(
        RangeSpec(flavor="private", user="u0", radius=30.0)
    )
    assert outcome.correct
    oracle = BruteForceOracle.from_server(recovered.server)
    user = recovered.users["u0"]
    truth = {
        item
        for item in oracle.public
        if user.location.distance_to(oracle.public[item]) <= 30.0
    }
    assert set(answer) == truth
    second = recovered.checkpoint(directory)
    assert os.path.exists(second)
    assert len(list_checkpoints(directory)) == 2


def test_reattach_keeps_wal_contiguous(tmp_path):
    """``recover(attach=True)`` resumes the same WAL: the persist.replayed
    record and all post-recovery events land seq-contiguously, so a
    second crash-recover cycle still passes the strict gap check."""
    ops = small_workload(checkpoint_after=CHECKPOINT_AT)
    directory, _, _ = _durable_run(tmp_path, ops)
    resumed = _recover(directory, attach=True)
    resumed.apply_movement({"u0": Point(30.0, 30.0)})
    resumed.publish_all()
    resumed.obs.events.detach_jsonl()
    final = _recover(directory)
    assert system_digest(final) == system_digest(resumed)
