"""Property suite: ``recover(checkpoint, log) ≡ uncrashed system``.

Hypothesis generates whole workloads (users, POIs, movement, publishes,
private queries, profile changes) plus a checkpoint position and a crash
boundary, and asserts the recovered system matches the uncrashed
reference run — by canonical state digest, by oracle-validated probe
queries, and by the privacy auditor's attainment report folded from the
WAL versus the live ring.
"""

from __future__ import annotations

import json
import os
import tempfile

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.oracle import BruteForceOracle
from repro.geometry.rect import Rect
from repro.obs import Telemetry
from repro.obs.audit import PrivacyAuditor
from repro.persist import Recovery, system_digest

from harness import (
    build_system,
    reference_digest,
    run_ops,
    truncate_wal_to_seq,
    wal_path,
)

N_USERS = 6
N_POIS = 4

coord = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, width=32)
user_id = st.integers(min_value=0, max_value=N_USERS - 1).map(lambda i: f"u{i}")


def _setup_ops(draw_coords: list[float]) -> list[tuple]:
    """Deterministic world setup; coordinates come from hypothesis."""
    it = iter(draw_coords)
    ops: list[tuple] = []
    for j in range(N_POIS):
        ops.append(("poi", f"p{j}", next(it), next(it)))
    for i in range(N_USERS):
        k = 1 + (i % 3)
        ops.append(("user", f"u{i}", next(it), next(it), k, 0.0))
    ops.append(("publish",))
    return ops


tail_op = st.one_of(
    st.tuples(st.just("publish")),
    st.tuples(st.just("publish_bulk")),
    st.tuples(
        st.just("move"),
        st.lists(st.tuples(user_id, coord, coord), min_size=1, max_size=3),
    ),
    st.tuples(st.just("range"), user_id, st.floats(5.0, 40.0, allow_nan=False)),
    st.tuples(st.just("nn"), user_id),
    st.tuples(st.just("knn"), user_id, st.integers(1, 3)),
    st.tuples(st.just("profile"), user_id, st.integers(1, 4)),
    st.tuples(st.just("mode"), user_id, st.sampled_from(["passive", "active"])),
    st.tuples(st.just("poi_move"), st.just("p0"), coord, coord),
)

workload = st.builds(
    lambda setup_coords, tail: (_setup_ops(setup_coords), list(tail)),
    st.lists(coord, min_size=2 * (N_POIS + N_USERS), max_size=2 * (N_POIS + N_USERS)),
    st.lists(tail_op, min_size=3, max_size=12),
)


def _durable_run(directory: str, ops: list[tuple]) -> list[int]:
    system = build_system(directory)
    seqs = run_ops(system, ops, directory)
    system.obs.events.detach_jsonl()
    return seqs, system


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=workload, checkpoint_slot=st.integers(0, 11), crash_slot=st.integers(0, 11))
def test_recover_equals_uncrashed_system(data, checkpoint_slot, crash_slot):
    setup, tail = data
    checkpoint_at = len(setup) + checkpoint_slot % (len(tail) + 1)
    ops = list(setup) + list(tail)
    ops.insert(checkpoint_at, ("checkpoint",))
    # Crash at an op boundary at or past the checkpoint.
    boundary = checkpoint_at + crash_slot % (len(ops) - checkpoint_at)
    with tempfile.TemporaryDirectory() as tmp:
        seqs, live = _durable_run(tmp, ops)

        # 1. No crash: full recovery is digest-identical to the live run.
        recovery = Recovery(tmp, telemetry=Telemetry())
        recovered = recovery.recover()
        live_digest = system_digest(live)
        assert system_digest(recovered) == live_digest

        # 2. Oracle-validated probes on the recovered server.
        oracle = BruteForceOracle.from_server(recovered.server)
        window = Rect(20.0, 20.0, 80.0, 80.0)
        assert set(recovered.server.public_range_over_public(window)) == set(
            oracle.public_range(window)
        )
        count = recovered.server.public_count(window)
        # approx: summation order over the rebuilt index differs.
        assert count.expected == pytest.approx(
            oracle.public_count(window).expected
        )

        # 3. The attainment report folded from the WAL equals the one
        # folded from the live system's in-memory ring.
        from_wal = recovery.audit_report()["totals"]
        live_ring = PrivacyAuditor.from_log(live.obs.events)
        # The live ring also saw the persist.checkpoint event; audited
        # kinds are identical, so the tallies must be too.
        assert from_wal == live_ring.report()["totals"]

        # 4. Crash at the drawn boundary: recovery equals the uncrashed
        # reference run of the surviving op prefix.
        truncate_wal_to_seq(tmp, seqs[boundary])
        crashed = Recovery(tmp, telemetry=Telemetry()).recover()
        assert system_digest(crashed) == reference_digest(ops[: boundary + 1])


@settings(max_examples=10, deadline=None)
@given(data=workload, cut=st.integers(1, 60))
def test_torn_tail_recovers_to_complete_prefix(data, cut):
    """Whatever character the final record is torn at, recovery lands on
    the state after the last *complete* record."""
    setup, tail = data
    ops = list(setup) + list(tail)
    ops.insert(len(setup), ("checkpoint",))
    with tempfile.TemporaryDirectory() as tmp:
        _durable_run(tmp, ops)
        path = wal_path(tmp)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        torn = lines[-1][:cut]
        try:
            json.loads(torn)
            complete = lines  # the cut happened to keep valid JSON
        except ValueError:
            complete = lines[:-1]
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1] + [torn])
        recovered = Recovery(tmp, telemetry=Telemetry()).recover()
        with tempfile.TemporaryDirectory() as clean:
            os.makedirs(os.path.join(clean, "x"))
            clean_dir = os.path.join(clean, "x")
            for name in os.listdir(tmp):
                if name.endswith(".json"):
                    with open(os.path.join(tmp, name)) as src, open(
                        os.path.join(clean_dir, name), "w"
                    ) as dst:
                        dst.write(src.read())
            with open(wal_path(clean_dir), "w", encoding="utf-8") as handle:
                handle.writelines(complete)
            expected = Recovery(clean_dir, telemetry=Telemetry()).recover()
            assert system_digest(recovered) == system_digest(expected)
