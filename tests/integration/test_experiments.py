"""Integration tests for the experiment harness (small scales).

Each experiment runs at a reduced size and is checked for the qualitative
shape the paper claims — these are the same assertions EXPERIMENTS.md
documents at full scale.
"""

import pytest

from repro.evalx.experiments import (
    figure_6b_example,
    run_e1_profile,
    run_e2_data_dependent,
    run_e3_ablation_pyramid,
    run_e3_space_dependent,
    run_e4_scalability,
    run_e5_private_range,
    run_e6_private_nn,
    run_e7_public_count,
    run_e8_public_nn,
    run_e9_tradeoff,
    run_e10_attacks,
    run_e10_linkage,
    run_e11_transmission,
    run_e12_continuous,
    run_e12_delta_transmission,
)


class TestE1:
    def test_reproduces_figure_2(self):
        table = run_e1_profile()
        ks = table.column("k")
        assert ks == ["1", "1", "1", "100", "100", "1000", "1000"]


class TestE2E3:
    def test_data_dependent_table_shape(self):
        table = run_e2_data_dependent(n_users=400, ks=(5, 20), victims=15, seed=3)
        assert len(table) == 4  # 2 algorithms x 2 ks
        assert all(v == "1.0000" for v in table.column("k_sat"))

    def test_space_dependent_satisfies_k(self):
        table = run_e3_space_dependent(n_users=400, ks=(5, 20), victims=15, seed=3)
        assert len(table) == 8  # 4 space-dependent algorithms x 2 ks
        assert all(v == "1.0000" for v in table.column("k_sat"))

    def test_mbr_tighter_than_naive(self):
        table = run_e2_data_dependent(n_users=600, ks=(20,), victims=25, seed=3)
        areas = {
            algo: float(cell.replace(",", ""))
            for algo, cell in zip(table.column("algorithm"), table.column("mean_area"))
        }
        assert areas["mbr"] <= areas["naive"] * 1.5

    def test_clique_served_rate_falls_with_k(self):
        from repro.evalx.experiments import run_e2_clique

        table = run_e2_clique(n_arrivals=200, ks=(3, 8), seed=3)
        rates = [float(v) for v in table.column("served_rate")]
        groups = [float(v) for v in table.column("mean_group")]
        assert rates[0] >= rates[1]
        assert groups[0] >= 3 and groups[1] >= 8

    def test_pyramid_ablation_merge_shrinks_area(self):
        table = run_e3_ablation_pyramid(n_users=500, k=15, victims=40, seed=3)
        areas = dict(zip(table.column("variant"), table.column("mean_area")))
        assert float(areas["bottom-up+merge"].replace(",", "")) <= float(
            areas["bottom-up"].replace(",", "")
        )
        assert areas["bottom-up"] == areas["top-down"]


class TestE4:
    def test_scalability_shapes(self):
        """Timing comparisons with small gaps are noise on shared CI boxes;
        assert only the large structural gaps and the sharing rates."""
        table = run_e4_scalability(n_users=800, rounds=2, seed=3)
        throughput = {
            strategy: float(cell.replace(",", ""))
            for strategy, cell in zip(table.column("strategy"), table.column("cloaks/s"))
        }
        rates = {
            strategy: float(cell)
            for strategy, cell in zip(
                table.column("strategy"), table.column("reuse_or_share_rate")
            )
        }
        # Pyramid-based strategies beat per-user MBR by a wide margin.
        pyramid_best = max(
            throughput["recompute"],
            throughput["incremental"],
            throughput["shared-batch"],
        )
        assert pyramid_best > 1.5 * throughput["mbr-per-user"]
        # The Section 5.3 techniques genuinely engage.
        assert rates["incremental"] > 0.3
        assert rates["shared-batch"] > 0.3
        assert rates["mbr-incremental"] > 0.2
        # The vectorized bulk write path is the default headline strategy
        # (and run_e4_scalability itself audits it for undeclared
        # privacy violations, raising on any).
        assert "bulk-vectorized" in throughput
        assert throughput["bulk-vectorized"] > 0


class TestE5:
    def test_candidates_grow_with_k_and_contain_truth(self):
        table = run_e5_private_range(
            n_users=500, n_pois=200, ks=(1, 10, 50), queries=12, seed=3
        )
        candidates = [float(c) for c in table.column("cand_exact")]
        assert candidates == sorted(candidates)
        assert all(v == "yes" for v in table.column("contained"))

    def test_mbr_inflation_at_least_one(self):
        table = run_e5_private_range(
            n_users=500, n_pois=200, ks=(10,), queries=12, seed=3
        )
        assert all(float(v) >= 1.0 for v in table.column("mbr_inflation"))


class TestE6:
    def test_exact_tightest_and_guaranteed(self):
        table = run_e6_private_nn(
            n_users=500, n_pois=200, ks=(10,), queries=8, check_samples=25, seed=3
        )
        by_method = dict(zip(table.column("method"), table.column("mean_cand")))
        assert float(by_method["exact"]) <= float(by_method["filter"])
        assert float(by_method["filter"]) <= float(by_method["range"])
        assert all(v == "yes" for v in table.column("guarantee_ok"))


class TestE7:
    def test_worked_example_exact(self):
        example, sweep = run_e7_public_count(n_users=400, ks=(5,), windows=8, seed=3)
        rows = dict(zip(example.column("format"), example.column("measured")))
        assert rows["absolute value"] == "2.7000"
        assert rows["interval min"] == "1"
        assert rows["interval max"] == "5"
        assert rows["naive count"] == "5"

    def test_probabilistic_beats_naive(self):
        _, sweep = run_e7_public_count(
            n_users=800, ks=(5, 40), windows=10, seed=3
        )
        for abs_err, naive_err in zip(
            sweep.column("abs_err"), sweep.column("naive_err")
        ):
            assert float(abs_err) < float(naive_err.replace(",", ""))


class TestE8:
    def test_uncertainty_grows_with_k(self):
        table = run_e8_public_nn(
            n_users=250, ks=(1, 30), queries=10, samples=512, seed=3
        )
        entropies = [float(v) for v in table.column("entropy_bits")]
        assert entropies[-1] > entropies[0]

    def test_figure_6b_example_has_ranked_candidates(self):
        table = figure_6b_example()
        assert len(table) >= 2
        probs = [float(v) for v in table.column("P(nearest)")]
        assert probs == sorted(probs, reverse=True)
        assert sum(probs) == pytest.approx(1.0, abs=1e-6)
        assert table.column("object")[0] == "D"


class TestE9:
    def test_costs_monotone_in_k(self):
        table = run_e9_tradeoff(
            n_users=600, n_pois=150, ks=(1, 5, 25, 100), queries=10, seed=3
        )
        areas = [float(v.replace(",", "")) for v in table.column("mean_area")]
        cands = [float(v.replace(",", "")) for v in table.column("range_cand")]
        assert areas == sorted(areas)
        assert cands == sorted(cands)
        assert all(v == "yes" for v in table.column("answer_ok"))


class TestE9b:
    def test_space_dependent_delivers_anonymity_data_dependent_does_not(self):
        from repro.evalx.experiments import run_e9_by_algorithm

        table = run_e9_by_algorithm(
            n_users=500, n_pois=120, k=10, queries=10, posterior_sample=5, seed=3
        )
        rows = dict(zip(table.column("algorithm"), table.column("posterior_k")))
        assert float(rows["naive"]) < 3.0
        assert float(rows["pyramid"]) >= 8.0
        assert float(rows["hilbert"]) >= 10.0


class TestE10:
    def test_attack_table_shows_naive_broken(self):
        table = run_e10_attacks(
            n_users=400, k=8, victims=20, posterior_sample=8, seed=3
        )
        rows = {
            algo: (float(center), float(posterior))
            for algo, center, posterior in zip(
                table.column("algorithm"),
                table.column("center_err"),
                table.column("posterior_k"),
            )
        }
        naive_center, naive_posterior = rows["naive"]
        pyramid_center, pyramid_posterior = rows["pyramid"]
        assert naive_center < 0.1
        assert naive_posterior < 2.0
        assert pyramid_center > naive_center
        assert pyramid_posterior > naive_posterior
        hilbert_posterior = rows["hilbert"][1]
        assert hilbert_posterior >= 8.0  # reciprocal by construction

    def test_linkage_table_runs(self):
        table = run_e10_linkage(n_users=300, k=10, steps=8, seed=3)
        assert len(table) == 6
        for v in table.column("mean_shrinkage"):
            assert 0.0 <= float(v) <= 1.0

    def test_density_attack_table(self):
        from repro.evalx.experiments import run_e10_density

        table = run_e10_density(n_users=400, k=8, victims=20, seed=3)
        rows = dict(zip(table.column("algorithm"), table.column("center_err")))
        # Naive stays broken even for the density-aware comparison row.
        assert float(rows["naive"]) < float(rows["pyramid"])
        for v in table.column("effective_cells"):
            assert float(v) >= 1.0


class TestE11:
    def test_savings_grow_with_poi_count(self):
        table = run_e11_transmission(
            n_users=500, n_pois_list=(100, 400), k=10, queries=10, seed=3
        )
        send_all = [float(v.replace(",", "")) for v in table.column("send_all")]
        cands = [float(v.replace(",", "")) for v in table.column("range_cand")]
        assert all(c < s for c, s in zip(cands, send_all))


class TestE13:
    def test_temporal_trades_delay_for_area(self):
        from repro.evalx.experiments import run_e13_temporal

        table = run_e13_temporal(
            n_users=400, ks=(2, 6), region_side=4.0, steps=25, requests=20, seed=3
        )
        delays = [float(v) for v in table.column("mean_delay")]
        spatial = [
            float(v.replace(",", "")) for v in table.column("spatial_area(pyramid)")
        ]
        temporal_area = [float(v) for v in table.column("temporal_area")]
        # Delay grows with k while the region stays fixed and far smaller
        # than what spatial cloaking needs.
        assert delays[1] > delays[0]
        assert all(t < s for t, s in zip(temporal_area, spatial))


class TestE14:
    def test_naive_dummies_broken_consistent_survive(self):
        from repro.evalx.experiments import run_e14_dummies

        table = run_e14_dummies(n_dummy_counts=(4,), updates=12, n_pois=150, seed=3)
        rows = {
            variant: float(posterior)
            for variant, posterior in zip(
                table.column("variant"), table.column("posterior_size")
            )
            if variant in ("naive", "consistent")
        }
        assert rows["naive"] < 2.5
        assert rows["consistent"] > 4.0


class TestE12:
    def test_incremental_orders_of_magnitude_faster(self):
        table = run_e12_continuous(n_users=500, updates=300, seed=3)
        rates = {
            strategy: float(cell.replace(",", ""))
            for strategy, cell in zip(
                table.column("strategy"), table.column("updates/s")
            )
        }
        assert rates["incremental"] > 10 * rates["recompute"]
        expected = table.column("expected_count")
        assert expected[0] == expected[1]  # same answer either way

    def test_delta_cheaper_than_full_reship(self):
        table = run_e12_delta_transmission(
            n_users=400, n_pois=150, steps=10, k=10, seed=3
        )
        shipped = [float(v.replace(",", "")) for v in table.column("objects_shipped")]
        assert shipped[0] < shipped[1]
