"""Integration tests: the full Figure 1 pipeline over a moving population."""

import numpy as np
import pytest

from repro.cloaking.incremental import IncrementalCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.profiles import PrivacyProfile, example_profile, hhmm
from repro.core.system import PrivacySystem
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.random_waypoint import RandomWaypointModel
from repro.mobility.users import MobileUser, UserMode

BOUNDS = Rect(0, 0, 100, 100)


@pytest.fixture
def world(rng):
    """A system with 300 users, 60 POIs, and a waypoint mobility model."""
    system = PrivacySystem(
        BOUNDS, IncrementalCloaker(PyramidCloaker(BOUNDS, height=6))
    )
    model = RandomWaypointModel(BOUNDS, rng, speed_range=(0.5, 2.0))
    coords = rng.uniform(0, 100, size=(300, 2))
    for i, (x, y) in enumerate(coords):
        p = Point(float(x), float(y))
        system.add_user(MobileUser(i, p, PrivacyProfile.always(k=8)))
        model.add_user(i, p)
    for j in range(60):
        x, y = rng.uniform(0, 100, 2)
        system.add_poi(("poi", j), Point(float(x), float(y)))
    return system, model


class TestMovingPipeline:
    def test_multi_step_simulation_stays_consistent(self, world):
        system, model = world
        for _ in range(5):
            system.apply_movement(model.step(1.0))
            # Server invariant: every stored region has positive area
            # (all users want privacy) and there is one region per user.
            assert len(system.server.private) == 300
            for _, region in system.server.private.items():
                assert region.area > 0
        # Queries stay exact throughout.
        for victim in (0, 100, 299):
            outcome, _ = system.user_range_query(victim, radius=10.0)
            assert outcome.correct
            nn_outcome, _ = system.user_nn_query(victim)
            assert nn_outcome.correct

    def test_server_count_matches_reality_in_expectation(self, world, rng):
        system, model = world
        system.apply_movement(model.step(1.0))
        window = Rect(20, 20, 80, 80)
        answer = system.server.public_count(window)
        truth = sum(
            1 for u in system.users.values() if window.contains_point(u.location)
        )
        lo, hi = answer.interval
        assert lo <= truth <= hi
        # Expectation should land near the truth for a large window.
        assert abs(answer.expected - truth) < 0.25 * truth + 10

    def test_incremental_reuse_kicks_in_over_steps(self, world):
        system, model = world
        for _ in range(4):
            system.apply_movement(model.step(0.2))  # small moves
        assert system.anonymizer.cloaker.stats.reuses > 0

    def test_continuous_monitor_tracks_movement(self, world):
        system, model = world
        system.publish_all()
        monitor = system.server.register_count_monitor("m", Rect(0, 0, 50, 50))
        for _ in range(3):
            system.apply_movement(model.step(2.0))
        recomputed = monitor.recompute(system.server.private)
        assert monitor.expected_count == pytest.approx(recomputed.expected)


class TestTemporalProfiles:
    def test_profile_switches_cloaking_over_the_day(self, rng):
        system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=6))
        coords = rng.uniform(0, 100, size=(400, 2))
        for i, (x, y) in enumerate(coords):
            system.add_user(
                MobileUser(i, Point(float(x), float(y)), example_profile())
            )
        # Daytime: k = 1, exact locations on the server.
        system.clock = hhmm("12:00")
        system.publish_all()
        day_areas = [r.area for _, r in system.server.private.items()]
        assert all(a == 0.0 for a in day_areas)
        # Evening: k = 100, A_min 1.
        system.clock = hhmm("18:00")
        system.publish_all()
        evening_areas = [r.area for _, r in system.server.private.items()]
        assert all(a >= 1.0 for a in evening_areas)

    def test_night_regions_larger_than_evening(self, rng):
        system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=6))
        coords = rng.uniform(0, 100, size=(1200, 2))
        for i, (x, y) in enumerate(coords):
            system.add_user(
                MobileUser(i, Point(float(x), float(y)), example_profile())
            )
        system.clock = hhmm("18:00")
        system.publish_all()
        evening = np.mean([r.area for _, r in system.server.private.items()])
        system.clock = hhmm("23:00")
        system.publish_all()
        night = np.mean([r.area for _, r in system.server.private.items()])
        assert night > evening


class TestMixedPopulation:
    def test_mixed_modes_and_profiles(self, rng):
        system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=6))
        coords = rng.uniform(0, 100, size=(200, 2))
        for i, (x, y) in enumerate(coords):
            p = Point(float(x), float(y))
            if i % 10 == 0:
                system.add_user(MobileUser(i, p, mode=UserMode.PASSIVE))
            elif i % 3 == 0:
                system.add_user(MobileUser(i, p, PrivacyProfile.always(k=1)))
            else:
                system.add_user(MobileUser(i, p, PrivacyProfile.always(k=15)))
        system.publish_all()
        # Passive users have no server-side region at all.
        assert len(system.server.private) == 200 - 20
        # k=1 users appear as exact points, k=15 users as true regions.
        areas = {}
        for i in range(200):
            if i % 10 == 0:
                continue
            pseudonym = system.anonymizer.pseudonym_of(i)
            areas[i] = system.server.private.region_of(pseudonym).area
        for i, area in areas.items():
            if i % 3 == 0:
                assert area == 0.0
            else:
                assert area > 0.0

    def test_unsubscribe_mid_simulation(self, rng):
        system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=6))
        coords = rng.uniform(0, 100, size=(100, 2))
        for i, (x, y) in enumerate(coords):
            system.add_user(
                MobileUser(i, Point(float(x), float(y)), PrivacyProfile.always(k=5))
            )
        system.publish_all()
        for i in range(0, 50):
            system.set_mode(i, UserMode.PASSIVE)
        assert len(system.server.private) == 50
        # Remaining users still get valid cloaks against the smaller pool.
        outcome = system.anonymizer.cloak_user(75, t=0.0)
        assert outcome.user_count >= 5
