"""End-to-end planner self-healing: stale calibration -> mispredict ->
recalibration -> accurate predictions.

This is the ISSUE's closing-the-loop proof.  We poison the planner's
cached calibration so every cost prediction is wildly inflated, run a
steady workload, and watch the observability layer drive the repair:

1. the accuracy monitor's folded median ratio leaves the tolerance
   band and a ``planner.mispredict`` event fires;
2. the drift check requests a recalibration from the
   ``StatisticsCollector``;
3. the next planning pass recalibrates (``planner.calibrated`` with the
   drift reason in its payload);
4. post-recalibration predictions land back within the band.
"""

import dataclasses

import numpy as np
import pytest

from repro import (
    MobileUser,
    PrivacyProfile,
    PrivacySystem,
    PyramidCloaker,
    RangeSpec,
)
from repro.geometry import Point, Rect
from repro.obs.accuracy import _fold, _median
from repro.obs.events import PLANNER_CALIBRATED, PLANNER_MISPREDICT

#: Every prediction is made this many times too expensive.
POISON_FACTOR = 500.0


def build_system(users=40, pois=30, seed=7):
    rng = np.random.default_rng(seed)
    bounds = Rect(0, 0, 100, 100)
    system = PrivacySystem(bounds, PyramidCloaker(bounds, height=5))
    for j in range(pois):
        x, y = rng.uniform(0, 100, 2)
        system.add_poi(f"poi-{j}", Point(float(x), float(y)))
    for i in range(users):
        x, y = rng.uniform(0, 100, 2)
        system.add_user(
            MobileUser(i, Point(float(x), float(y)), PrivacyProfile.always(k=4))
        )
    system.publish_all()
    return system


def poison_calibration(planner, factor=POISON_FACTOR):
    """Scale every calibrated cost so predictions are ``factor``x too high."""
    collector = planner.collector
    assert collector._backend_cals, "calibration must exist before poisoning"
    collector._backend_cals = {
        name: dataclasses.replace(
            cal,
            build_seconds=cal.build_seconds * factor,
            range_seconds=tuple(s * factor for s in cal.range_seconds),
            knn_seconds=cal.knn_seconds * factor,
        )
        for name, cal in collector._backend_cals.items()
    }
    if collector._kernel_cal is not None:
        kernel = collector._kernel_cal
        collector._kernel_cal = dataclasses.replace(
            kernel,
            range_seconds=kernel.range_seconds * factor,
            count_seconds=kernel.count_seconds * factor,
            knn_seconds=kernel.knn_seconds * factor,
            grid_build_seconds=kernel.grid_build_seconds * factor,
        )


def run_workload(system, rounds):
    """Same public range query, repeatedly: one steady accuracy group."""
    for _ in range(rounds):
        system.query(RangeSpec(window=Rect(20, 20, 60, 60)))


def folded_ratios(system, since_seq=0, until_seq=None):
    """Folded measured/predicted ratios from the event trail."""
    ratios = []
    for event in system.obs.events.events("planner.measured"):
        if event.seq <= since_seq:
            continue
        if until_seq is not None and event.seq > until_seq:
            continue
        predicted = event.attrs.get("est_seconds") or 0.0
        if predicted > 0.0:
            ratios.append(_fold(event.attrs["seconds"] / predicted))
    return ratios


def last_seq(system):
    return max((e.seq for e in system.obs.events.events()), default=0)


class TestFeedbackLoop:
    @pytest.fixture(scope="class")
    def healed_system(self):
        system = build_system()
        planner = system.planner
        run_workload(system, 1)  # force the initial calibration
        poison_calibration(planner)
        # Exactly enough rounds for the accuracy window to trust its
        # median (min_samples) and flag the poisoned group; the repair
        # lands on the *next* planning pass.
        run_workload(system, planner.accuracy.min_samples)
        poison_end = last_seq(system)
        run_workload(system, 10)
        return system, poison_end

    def test_mispredict_event_fires(self, healed_system):
        system, _ = healed_system
        mispredicts = list(system.obs.events.events(PLANNER_MISPREDICT))
        assert mispredicts, "poisoned predictions must raise a mispredict"
        attrs = mispredicts[0].attrs
        assert attrs["median_ratio"] < 1.0, "inflated predictions -> ratio << 1"
        assert attrs["threshold"] == system.planner.accuracy.threshold

    def test_recalibration_requested_and_performed(self, healed_system):
        system, _ = healed_system
        calibrations = list(system.obs.events.events(PLANNER_CALIBRATED))
        drift_recals = [
            event
            for event in calibrations
            if "drift" in event.attrs.get("reason", "")
        ]
        assert drift_recals, "drift must drive a planner.calibrated event"
        assert system.planner.accuracy.recalibrations >= 1

    def test_predictions_recover_after_recalibration(self, healed_system):
        system, poison_end = healed_system
        poisoned = folded_ratios(system, until_seq=poison_end)
        recovered = folded_ratios(system, since_seq=poison_end)
        assert recovered, "post-recalibration measurements must exist"
        pre = _median(poisoned)
        post = _median(recovered)
        assert post < pre / 4.0, (
            f"recalibration must slash the folded error "
            f"(pre={pre:.1f}x, post={post:.1f}x)"
        )
        assert post < POISON_FACTOR / 10.0

    def test_quiet_period_prevents_thrashing(self, healed_system):
        system, _ = healed_system
        # One drift excursion -> one recalibration, not one per query.
        assert system.planner.accuracy.recalibrations == 1
