"""Fuzz-style stress test: random operation interleavings, invariants held.

Drives a PrivacySystem through hundreds of randomly ordered operations —
registration churn, mode flips, profile updates, movement, publishes, and
all four query types — asserting after every step that the system-wide
invariants hold.  This is the failure-injection net for state-machine bugs
the scenario tests can't reach.
"""

import numpy as np
import pytest

from repro.cloaking.incremental import IncrementalCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.profiles import PrivacyProfile, example_profile
from repro.core.system import PrivacySystem
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.users import MobileUser, UserMode

BOUNDS = Rect(0, 0, 100, 100)


def random_point(rng) -> Point:
    return Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))


def check_invariants(system: PrivacySystem) -> None:
    """The contract the whole pipeline must keep at every instant."""
    visible = set(system.anonymizer.registered_users())
    # 1. Exactly the visible users are registered.
    expected_visible = {
        uid for uid, user in system.users.items() if user.is_visible
    }
    assert visible == expected_visible
    # 2. The server never holds more regions than visible users.
    assert len(system.server.private) <= len(visible)
    # 3. Every stored region contains its user's true location and is
    #    inside the universe (pseudonym reverse map via the anonymizer).
    for uid in visible:
        pseudonym = system.anonymizer.pseudonym_of(uid)
        if pseudonym in system.server.private:
            region = system.server.private.region_of(pseudonym)
            assert BOUNDS.contains_rect(region)
            assert region.contains_point(system.users[uid].location)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_interleaving(seed):
    rng = np.random.default_rng(seed)
    system = PrivacySystem(
        BOUNDS, IncrementalCloaker(PyramidCloaker(BOUNDS, height=5))
    )
    for j in range(25):
        system.add_poi(("poi", j), random_point(rng))
    next_user = 0
    # Seed population so queries are always satisfiable.
    for _ in range(60):
        system.add_user(
            MobileUser(next_user, random_point(rng), PrivacyProfile.always(k=5))
        )
        next_user += 1
    system.publish_all()

    active_ids = lambda: [  # noqa: E731 - local shorthand
        uid for uid, u in system.users.items() if u.is_visible
    ]

    for step in range(400):
        op = rng.random()
        if op < 0.15:
            profile = (
                example_profile()
                if rng.random() < 0.3
                else PrivacyProfile.always(k=int(rng.integers(1, 12)))
            )
            system.add_user(MobileUser(next_user, random_point(rng), profile))
            next_user += 1
        elif op < 0.30:
            ids = active_ids()
            if len(ids) > 20:
                victim = ids[int(rng.integers(len(ids)))]
                system.set_mode(victim, UserMode.PASSIVE)
        elif op < 0.40:
            passive = [
                uid for uid, u in system.users.items() if not u.is_visible
            ]
            if passive:
                revived = passive[int(rng.integers(len(passive)))]
                system.set_mode(revived, UserMode.ACTIVE)
        elif op < 0.55:
            ids = active_ids()
            if ids:
                mover = ids[int(rng.integers(len(ids)))]
                system.apply_movement({mover: random_point(rng)}, dt=0.5)
        elif op < 0.65:
            ids = active_ids()
            if ids:
                target = ids[int(rng.integers(len(ids)))]
                system.anonymizer.update_profile(
                    target, PrivacyProfile.always(k=int(rng.integers(1, 15)))
                )
        elif op < 0.80:
            ids = active_ids()
            if ids:
                asker = ids[int(rng.integers(len(ids)))]
                outcome, _ = system.user_range_query(asker, radius=8.0)
                assert outcome.correct
        elif op < 0.90:
            ids = active_ids()
            if ids:
                asker = ids[int(rng.integers(len(ids)))]
                outcome, _ = system.user_nn_query(asker)
                assert outcome.correct
        elif op < 0.95:
            answer = system.server.public_count(
                Rect.from_center(random_point(rng), 20, 20).clipped(BOUNDS)
            )
            lo, hi = answer.interval
            assert 0 <= lo <= hi <= len(system.server.private)
        else:
            if len(system.server.private) > 0:
                result = system.server.public_nn(random_point(rng), samples=128)
                assert abs(result.answer.total_probability - 1.0) < 1e-9
        if step % 25 == 0:
            check_invariants(system)
    check_invariants(system)
    # The ledger must reflect a fully correct run.
    summary = system.ledger.summary()
    if "range_accuracy" in summary:
        assert summary["range_accuracy"] == 1.0
    if "nn_accuracy" in summary:
        assert summary["nn_accuracy"] == 1.0
