"""Integration: a full server state survives persistence round-trips."""

import pytest

from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.persistence import (
    load_private_store,
    load_profiles,
    load_public_store,
    save_private_store,
    save_profiles,
    save_public_store,
)
from repro.core.profiles import PrivacyProfile, example_profile
from repro.core.system import PrivacySystem
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.users import MobileUser
from repro.queries.private_range import private_range_query
from repro.queries.public_range import public_range_count

BOUNDS = Rect(0, 0, 100, 100)


@pytest.fixture
def populated_system(uniform_points_500):
    system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=6))
    for i, p in enumerate(uniform_points_500):
        profile = example_profile() if i % 2 else PrivacyProfile.always(k=10)
        system.add_user(MobileUser(i, p, profile))
    for j in range(80):
        system.add_poi(f"poi-{j}", Point((37 * j) % 100, (53 * j) % 100))
    system.clock = 9 * 3600.0
    system.publish_all()
    return system


class TestServerStateRoundTrip:
    def test_query_answers_identical_after_restore(self, populated_system, tmp_path):
        system = populated_system
        save_public_store(system.server.public, tmp_path / "public.tsv")
        save_private_store(system.server.private, tmp_path / "private.tsv")

        restored_public = load_public_store(tmp_path / "public.tsv")
        restored_private = load_private_store(tmp_path / "private.tsv")

        region = Rect(30, 30, 55, 50)
        before = private_range_query(system.server.public, region, 8.0)
        after = private_range_query(restored_public, region, 8.0)
        assert sorted(before.candidates, key=str) == sorted(after.candidates, key=str)

        window = Rect(20, 20, 70, 70)
        count_before = public_range_count(system.server.private, window)
        count_after = public_range_count(restored_private, window)
        assert count_before.expected == pytest.approx(count_after.expected)
        assert count_before.interval == count_after.interval

    def test_profiles_round_trip_through_registry(self, populated_system, tmp_path):
        system = populated_system
        profiles = {
            str(uid): system.users[uid].profile for uid in system.users
        }
        save_profiles(profiles, tmp_path / "profiles.tsv")
        restored = load_profiles(tmp_path / "profiles.tsv")
        assert len(restored) == len(profiles)
        for uid, profile in profiles.items():
            for t in (0.0, 9 * 3600.0, 18 * 3600.0, 23 * 3600.0):
                assert (
                    restored[uid].requirement_at(t) == profile.requirement_at(t)
                ), (uid, t)

    def test_restored_stores_accept_new_data(self, populated_system, tmp_path):
        system = populated_system
        save_public_store(system.server.public, tmp_path / "public.tsv")
        restored = load_public_store(tmp_path / "public.tsv")
        restored.add("new-poi", Point(1, 2))
        assert "new-poi" in restored
        assert len(restored) == len(system.server.public) + 1
