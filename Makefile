# Developer entry points for the privacy-aware LBS reproduction.

.PHONY: install test conformance bench bench-smoke bench-batch bench-cloak bench-planner bench-obs-loop bench-recovery bench-history test-crash serve-smoke examples experiments report clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -q

bench-smoke:
	pytest benchmarks -q -k smoke

bench-batch:
	pytest benchmarks -q -k bench_batch

bench-cloak:
	pytest benchmarks -q -k bench_cloak

bench-planner:
	pytest benchmarks -q -k bench_planner

# Full observability feedback loop: smoke stages + planned-query loop,
# SLO evaluation and profiler overhead, folded into BENCH_obs.json with
# accuracy/health/profile sections.
bench-obs-loop:
	pytest benchmarks -q -k bench_obs

# Telemetry endpoint smoke: boots a monitored workload, scrapes
# /metrics /health /risk /timeseries over a real socket and validates
# every response (exposition format, schema tags, health verdict).
serve-smoke:
	python -m repro serve-metrics --smoke --users 60 --queries 5

# Crash-injection durability suite: torn WAL tails, partial checkpoints,
# hypothesis-generated workloads proving recover(checkpoint, log) lands
# on the uncrashed system.
test-crash:
	pytest tests/crash -q

# Durability benchmark: checkpoint write throughput plus checkpointed vs
# cold-replay recovery wall-time at 10k users, gated (checkpointed must
# beat cold) and folded into BENCH_recovery.json / BENCH_HISTORY.jsonl.
bench-recovery:
	pytest benchmarks -q -k bench_recovery

# Selftest pins 30%-drop detection at the default 25% gate; the real
# trajectory runs with a looser gate because CI runners and dev machines
# legitimately differ in raw speed.
bench-history:
	python -m repro bench-history --selftest
	python -m repro bench-history --gate 0.5

conformance:
	pytest tests/conformance -q

examples:
	for f in examples/*.py; do python $$f; done

experiments:
	python -m repro experiments all

report:
	python -m repro report -o experiment_tables.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
