"""E7 (Figure 6a): public count queries over private data.

Times the probabilistic count (including the exact Poisson-binomial PDF)
and regenerates the worked-example + accuracy-sweep tables.
"""

import numpy as np
import pytest

from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.evalx.experiments import figure_6a_store, run_e7_public_count
from repro.evalx.workloads import (
    build_workload,
    cloaked_private_store,
    loaded_cloaker,
    query_windows,
)
from repro.queries.probabilistic import poisson_binomial_pmf
from repro.queries.public_range import public_range_count


@pytest.fixture(scope="module")
def setup():
    workload = build_workload(n_users=2000, seed=7)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    private = cloaked_private_store(cloaker, k=20)
    window = query_windows(workload.bounds, 1, 0.2, np.random.default_rng(1))[0]
    return private, window


def test_e7_probabilistic_count(benchmark, setup):
    private, window = setup
    answer = benchmark(public_range_count, private, window)
    assert answer.expected > 0


def test_e7_full_pdf(benchmark, setup):
    private, window = setup
    answer = public_range_count(private, window)
    pmf = benchmark(answer.pmf)
    assert abs(pmf.sum() - 1.0) < 1e-9


def test_e7_poisson_binomial_500_trials(benchmark):
    probs = list(np.random.default_rng(2).uniform(0, 1, 500))
    pmf = benchmark(poisson_binomial_pmf, probs)
    assert abs(pmf.sum() - 1.0) < 1e-9


def test_e7_worked_example_exact(benchmark, record_table):
    store, window = figure_6a_store()
    answer = public_range_count(store, window)
    assert abs(answer.expected - 2.7) < 1e-9
    assert answer.interval == (1, 5)
    example, sweep = benchmark.pedantic(run_e7_public_count, rounds=1, iterations=1)
    record_table("E7_public_count", example, sweep)
