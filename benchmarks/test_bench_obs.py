"""Observability smoke benchmark: times the pipeline and emits BENCH_obs.json.

Run via ``make bench-smoke`` (or ``pytest benchmarks -q -k smoke``).  Each
stage of the private-query pipeline is timed with the benchmark harness
while a telemetry-instrumented :class:`~repro.core.system.PrivacySystem`
accumulates per-stage latency histograms and index work counters; the
final test folds everything into ``BENCH_obs.json`` at the repo root —
the machine-readable record CI uploads as an artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from bench_envelope import finalize_report
from repro import (
    MobileUser,
    PrivacyProfile,
    PrivacySystem,
    PyramidCloaker,
    RangeSpec,
)
from repro.geometry import Point, Rect
from repro.obs import SLOMonitor

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

N_USERS = 500
N_POIS = 60
N_QUERIES = 40

#: Shared across the module's tests: per-experiment timings, filled in by
#: each benchmark test and flushed to disk by the final report test.
_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module")
def system():
    rng = np.random.default_rng(42)
    bounds = Rect(0, 0, 1000, 1000)
    sys_ = PrivacySystem(bounds, PyramidCloaker(bounds, height=7))
    for j in range(N_POIS):
        x, y = rng.uniform(0, 1000, 2)
        sys_.add_poi(f"poi-{j}", Point(float(x), float(y)))
    for i in range(N_USERS):
        x, y = rng.uniform(0, 1000, 2)
        sys_.add_user(
            MobileUser(i, Point(float(x), float(y)), PrivacyProfile.always(k=10))
        )
    sys_.publish_all()
    return sys_


def _note(name: str, benchmark) -> None:
    stats = benchmark.stats.stats
    _RESULTS[name] = {
        "mean_s": stats.mean,
        "min_s": stats.min,
        "max_s": stats.max,
        "rounds": stats.rounds,
    }


def test_obs_smoke_publish_all(benchmark, system):
    benchmark.pedantic(system.publish_all, rounds=3, iterations=1)
    _note("publish_all", benchmark)


def test_obs_smoke_private_range(benchmark, system):
    user_ids = iter(range(10_000))

    def run():
        base = next(user_ids) * N_QUERIES
        for i in range(N_QUERIES):
            system.user_range_query((base + i) % N_USERS, radius=60.0)

    benchmark.pedantic(run, rounds=3, iterations=1)
    _note("private_range_x40", benchmark)


def test_obs_smoke_private_nn(benchmark, system):
    user_ids = iter(range(10_000))

    def run():
        base = next(user_ids) * N_QUERIES
        for i in range(N_QUERIES):
            system.user_nn_query((base + i * 3) % N_USERS)

    benchmark.pedantic(run, rounds=3, iterations=1)
    _note("private_nn_x40", benchmark)


def test_obs_smoke_public_count(benchmark, system):
    window = Rect(200, 200, 800, 800)

    def run():
        for _ in range(N_QUERIES):
            system.server.public_count(window)

    benchmark.pedantic(run, rounds=3, iterations=1)
    _note("public_count_x40", benchmark)


def test_obs_loop_planner_feedback(benchmark, system):
    """Planned queries with the full feedback loop on: correlation scope,
    measurement emit, accuracy-monitor observation per query."""
    window = Rect(200, 200, 700, 700)

    def run():
        for _ in range(N_QUERIES):
            system.query(RangeSpec(window=window))

    benchmark.pedantic(run, rounds=3, iterations=1)
    _note("planned_range_x40", benchmark)


def test_obs_loop_health_evaluate(benchmark, system):
    """One full SLO evaluation over the accumulated window."""
    monitor = SLOMonitor()
    report = benchmark.pedantic(
        lambda: monitor.evaluate(system), rounds=3, iterations=1
    )
    assert len(report.results) == 10
    _note("health_evaluate", benchmark)


def test_obs_loop_monitoring_overhead(system):
    """Gate: live monitoring (time-series tap + risk monitor) must cost
    under 5% on the planned-query path.  Measured on one system by
    toggling ``enable_monitoring`` around identical query rounds, best
    of several rounds each to shed scheduler noise."""
    import time

    rounds = 5

    def run_round():
        start = time.perf_counter()
        for i in range(N_QUERIES):
            system.query(
                RangeSpec(flavor="private", user=i % N_USERS, radius=60.0)
            )
        return time.perf_counter() - start

    run_round()  # warm caches/snapshots before timing either arm
    system.disable_monitoring()
    baseline = min(run_round() for _ in range(rounds))
    # Default 1s sampling interval: the steady-state cost is the event
    # tap on every emit, with window cuts amortized to one per second.
    system.enable_monitoring()
    try:
        monitored = min(run_round() for _ in range(rounds))
        windows_cut = system.timeseries.windows_cut
        risk_events = system.risk.events_consumed
    finally:
        system.disable_monitoring()
    overhead = monitored / baseline - 1.0
    _RESULTS["monitoring"] = {
        "baseline_s": baseline,
        "monitored_s": monitored,
        "overhead": overhead,
        "windows_cut": windows_cut,
        "risk_events_consumed": risk_events,
    }
    assert risk_events > 0, "risk monitor saw no traffic while enabled"
    assert overhead < 0.05, (
        f"monitoring overhead {overhead:.1%} exceeds the 5% budget "
        f"(baseline {baseline * 1e3:.2f}ms, monitored {monitored * 1e3:.2f}ms)"
    )


def test_obs_loop_profiled_queries(benchmark, system):
    """Same planned queries with the hot-span profiler installed —
    quantifies the profiler's own overhead next to planned_range_x40."""
    window = Rect(200, 200, 700, 700)

    def run():
        with system.obs.profiled(top=10):
            for _ in range(N_QUERIES):
                system.query(RangeSpec(window=window))

    benchmark.pedantic(run, rounds=3, iterations=1)
    _note("profiled_range_x40", benchmark)


def test_obs_smoke_report(system):
    """Fold the timings and the telemetry snapshot into BENCH_obs.json."""
    snapshot = system.telemetry()
    qos = snapshot["qos"]
    health = SLOMonitor().evaluate(system)
    with system.obs.profiled(top=5) as profiler:
        for i in range(10):
            system.query(
                RangeSpec(flavor="private", user=i % N_USERS, radius=60.0)
            )
    report = {
        "workload": {
            "users": N_USERS,
            "pois": N_POIS,
            "queries_per_round": N_QUERIES,
            "cloaker": "pyramid",
        },
        "experiments": _RESULTS,
        "stages": snapshot["stages"],
        "indexes": snapshot["indexes"],
        "candidate_overhead": {
            "range_mean_candidates": qos.get("range_mean_candidates"),
            "range_mean_overhead": qos.get("range_mean_overhead"),
            "range_accuracy": qos.get("range_accuracy"),
            "nn_mean_candidates": qos.get("nn_mean_candidates"),
            "nn_accuracy": qos.get("nn_accuracy"),
        },
        "server": snapshot["server"],
        "accuracy": system.planner.accuracy.report(),
        "health": health.to_dict(),
        "monitoring": _RESULTS.get("monitoring", {}),
        "profile": {"top": profiler.rows(5)},
    }
    finalize_report(report, "repro.obs.bench/1", BENCH_PATH)
    # The file must round-trip and carry the envelope + headline sections.
    parsed = json.loads(BENCH_PATH.read_text())
    assert parsed["schema"] == "repro.obs.bench/1"
    assert parsed["schema_version"] >= 1
    assert parsed["git_sha"] and parsed["created_at"]
    assert parsed["stages"]["query.private_range"]["count"] > 0
    assert parsed["candidate_overhead"]["range_mean_overhead"] >= 1.0
    assert parsed["indexes"]["server.public"]["node_visits"] > 0
    # The feedback-loop sections (this PR's additions).
    assert parsed["accuracy"]["schema"] == "repro.obs.accuracy/1"
    assert parsed["accuracy"]["observed"] > 0
    assert parsed["health"]["schema"] == "repro.obs.slo/1"
    assert parsed["health"]["total"] == 10
    # Filled when the monitoring-overhead gate ran in this invocation
    # (``make bench-obs-loop``); ``-k smoke`` selections skip it.
    if parsed["monitoring"]:
        assert parsed["monitoring"]["overhead"] < 0.05
    assert parsed["profile"]["top"], "profiled workload must record spans"
