"""E11: transmission cost vs the send-everything baseline (Section 6.2.1).

Regenerates the saving-factor table; the timed operation is the candidate
query at the largest POI scale.
"""

import pytest

from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.profiles import PrivacyRequirement
from repro.evalx.experiments import run_e11_transmission
from repro.evalx.workloads import build_workload, loaded_cloaker, poi_store
from repro.queries.private_range import private_range_query


@pytest.fixture(scope="module")
def setup():
    workload = build_workload(n_users=1500, n_pois=1600, seed=7)
    store = poi_store(workload)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    requirement = PrivacyRequirement(k=20)
    # A median-city user: the tightest cloak among a sample, i.e. someone
    # in a dense area (sparse-area users legitimately get huge regions).
    region = min(
        (cloaker.cloak(victim, requirement).region for victim in range(50)),
        key=lambda r: r.area,
    )
    return store, region


def test_e11_candidate_query_at_scale(benchmark, setup):
    store, region = setup
    result = benchmark(private_range_query, store, region, 5.0, "exact")
    # The whole point: the candidate set is a small fraction of the store.
    assert len(result.candidates) < len(store) / 4


def test_e11_table(benchmark, record_table):
    table = benchmark.pedantic(run_e11_transmission, rounds=1, iterations=1)
    record_table("E11_transmission", table)
