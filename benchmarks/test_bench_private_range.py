"""E5 (Figure 5a): private range queries + ablation A1 (exact vs MBR).

Times the server-side candidate generation for both candidate-region
variants and regenerates the E5 cost table.
"""

import pytest

from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.profiles import PrivacyRequirement
from repro.evalx.experiments import run_e5_private_range
from repro.evalx.workloads import build_workload, loaded_cloaker, poi_store
from repro.queries.private_range import private_range_query

RADIUS = 5.0


@pytest.fixture(scope="module")
def setup():
    workload = build_workload(n_users=2000, n_pois=400, seed=7)
    store = poi_store(workload)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    region = cloaker.cloak(0, PrivacyRequirement(k=20)).region
    return store, region


def test_e5_candidates_exact(benchmark, setup):
    store, region = setup
    result = benchmark(private_range_query, store, region, RADIUS, "exact")
    assert result.candidates


def test_e5_candidates_mbr(benchmark, setup):
    store, region = setup
    result = benchmark(private_range_query, store, region, RADIUS, "mbr")
    assert result.candidates


def test_e5_table(benchmark, record_table):
    table = benchmark.pedantic(run_e5_private_range, rounds=1, iterations=1)
    record_table("E5_private_range", table)
