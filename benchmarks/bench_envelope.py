"""Shared envelope stamping for every ``BENCH_*.json`` writer.

All benchmark reports go through :func:`finalize_report` so they carry
one uniform envelope — ``schema``, ``schema_version``, ``git_sha``,
``created_at``, ``python`` — and the bench-history subsystem
(:mod:`repro.obs.benchhist`, ``make bench-history``) can ingest any of
them without per-file special cases.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.obs.benchhist import wrap_report


def finalize_report(report: Mapping, schema: str, path: Path) -> dict:
    """Stamp the shared envelope onto ``report`` and write it to ``path``.

    Returns the enveloped report (also what ``path`` now contains), so
    callers can assert on the parsed round-trip.
    """
    wrapped = wrap_report(report, schema, cwd=path.parent)
    path.write_text(
        json.dumps(wrapped, indent=2, sort_keys=True, default=str) + "\n"
    )
    return wrapped
