"""E10: attack resistance of every cloaking algorithm.

Times the expensive omniscient-adversary replay (posterior anonymity) and
regenerates the attack + linkage tables.
"""

import pytest

from repro.attacks.posterior import posterior_anonymity
from repro.cloaking.hilbert import HilbertCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.profiles import PrivacyRequirement
from repro.evalx.experiments import run_e10_attacks, run_e10_density, run_e10_linkage
from repro.evalx.workloads import build_workload, loaded_cloaker

REQ = PrivacyRequirement(k=10)


@pytest.fixture(scope="module")
def workload():
    return build_workload(n_users=800, seed=7)


def test_e10_posterior_replay_pyramid(benchmark, workload):
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    result = benchmark(posterior_anonymity, cloaker, 0, REQ)
    assert result.posterior_anonymity >= 1


def test_e10_posterior_replay_hilbert(benchmark, workload):
    cloaker = loaded_cloaker(HilbertCloaker, workload, order=8)
    result = benchmark(posterior_anonymity, cloaker, 0, REQ)
    assert result.is_reciprocal


def test_e10_tables(benchmark, record_table):
    def all_three():
        return run_e10_attacks(), run_e10_density(), run_e10_linkage()

    attacks, density, linkage = benchmark.pedantic(all_three, rounds=1, iterations=1)
    record_table("E10_attacks", attacks, density, linkage)
