"""E1 (Figure 2): privacy profile lookups.

Regenerates the Figure 2 behaviour table and times the operation the
anonymizer performs on *every* location update: resolving the requirement
in force at the current time.
"""

from repro.core.profiles import example_profile, hhmm
from repro.evalx.experiments import run_e1_profile

PROFILE = example_profile()
EVENING = hhmm("18:30")


def test_e1_profile_lookup(benchmark, record_table):
    requirement = benchmark(PROFILE.requirement_at, EVENING)
    assert requirement.k == 100


def test_e1_table(benchmark, record_table):
    table = benchmark.pedantic(run_e1_profile, rounds=1, iterations=1)
    record_table("E1_profile", table)


def test_e1_profile_lookup_wrapped_interval(benchmark):
    """Lookups before the first entry (the wrap-around path)."""
    requirement = benchmark(PROFILE.requirement_at, hhmm("03:00"))
    assert requirement.k == 1000
