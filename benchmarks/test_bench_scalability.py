"""E4 (Section 5.3): scalability — incremental evaluation & shared execution.

Times a full re-cloak round of 3000 users under each strategy and
regenerates the E4 throughput table.
"""

import pytest

from repro.cloaking.incremental import IncrementalCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.cloaking.shared import cloak_all
from repro.core.profiles import PrivacyRequirement
from repro.evalx.experiments import run_e4_scalability, run_e4_scale_sweep
from repro.evalx.workloads import build_workload, loaded_cloaker

REQ = PrivacyRequirement(k=20)


@pytest.fixture(scope="module")
def workload():
    return build_workload(n_users=3000, seed=7)


def test_e4_recompute_round(benchmark, workload):
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)

    def full_round():
        return sum(1 for uid in cloaker.users() if cloaker.cloak(uid, REQ))

    assert benchmark(full_round) == 3000


def test_e4_incremental_round(benchmark, workload):
    inner = loaded_cloaker(PyramidCloaker, workload, height=6)
    incremental = IncrementalCloaker(inner)
    for uid in inner.users():  # warm the cache
        incremental.cloak(uid, REQ)

    def warm_round():
        return sum(1 for uid in inner.users() if incremental.cloak(uid, REQ))

    assert benchmark(warm_round) == 3000


def test_e4_shared_batch_round(benchmark, workload):
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)

    def batch_round():
        return len(cloak_all(cloaker, REQ).results)

    assert benchmark(batch_round) == 3000


def test_e4_table(benchmark, record_table):
    def both():
        return run_e4_scalability(), run_e4_scale_sweep()

    strategies, sweep = benchmark.pedantic(both, rounds=1, iterations=1)
    record_table("E4_scalability", strategies, sweep)
