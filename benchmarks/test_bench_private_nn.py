"""E6 (Figure 5b): private NN queries + ablation A2 (filter vs Voronoi).

Times all three candidate generators and regenerates the E6 tightness
table.
"""

import pytest

from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.profiles import PrivacyRequirement
from repro.evalx.experiments import run_e6_private_nn
from repro.evalx.workloads import build_workload, loaded_cloaker, poi_store
from repro.queries.private_nn import private_nn_query


@pytest.fixture(scope="module")
def setup():
    workload = build_workload(n_users=2000, n_pois=400, seed=7)
    store = poi_store(workload)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    region = cloaker.cloak(0, PrivacyRequirement(k=20)).region
    return store, region


@pytest.mark.parametrize("method", ["range", "filter", "exact"])
def test_e6_candidates(benchmark, setup, method):
    store, region = setup
    result = benchmark(private_nn_query, store, region, method)
    assert result.candidates


def test_e6_table(benchmark, record_table):
    table = benchmark.pedantic(run_e6_private_nn, rounds=1, iterations=1)
    record_table("E6_private_nn", table)
