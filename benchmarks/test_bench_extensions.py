"""E13/E14: extension experiments — temporal cloaking and false dummies.

Times the private k-NN extension's candidate generation and regenerates
both extension tables.
"""

import pytest

from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.profiles import PrivacyRequirement
from repro.evalx.experiments import run_e13_temporal, run_e14_dummies
from repro.evalx.workloads import build_workload, loaded_cloaker, poi_store
from repro.queries.private_knn import private_knn_query


@pytest.fixture(scope="module")
def setup():
    workload = build_workload(n_users=2000, n_pois=400, seed=7)
    store = poi_store(workload)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    region = cloaker.cloak(0, PrivacyRequirement(k=20)).region
    return store, region


@pytest.mark.parametrize("k", [1, 5, 10])
def test_private_knn_filter(benchmark, setup, k):
    store, region = setup
    result = benchmark(private_knn_query, store, region, k, "filter")
    assert len(result.candidates) >= k


def test_e13_table(benchmark, record_table):
    table = benchmark.pedantic(run_e13_temporal, rounds=1, iterations=1)
    record_table("E13_temporal", table)


def test_e14_table(benchmark, record_table):
    table = benchmark.pedantic(run_e14_dummies, rounds=1, iterations=1)
    record_table("E14_dummies", table)
