"""E2 (Figure 3): data-dependent cloaking — naive vs MBR.

Times one cloak request per algorithm on a 2000-user city and regenerates
the E2 comparison table (areas, latency, leakage context comes from E10).
"""

import pytest

from repro.cloaking.mbr import MBRCloaker
from repro.cloaking.naive import NaiveCloaker
from repro.core.profiles import PrivacyRequirement
from repro.evalx.experiments import run_e2_clique, run_e2_data_dependent
from repro.evalx.workloads import build_workload, loaded_cloaker

REQ = PrivacyRequirement(k=20)


@pytest.fixture(scope="module")
def workload():
    return build_workload(n_users=2000, seed=7)


def test_e2_naive_cloak(benchmark, workload):
    cloaker = loaded_cloaker(NaiveCloaker, workload)
    result = benchmark(cloaker.cloak, 0, REQ)
    assert result.user_count >= REQ.k


def test_e2_mbr_cloak(benchmark, workload):
    cloaker = loaded_cloaker(MBRCloaker, workload)
    result = benchmark(cloaker.cloak, 0, REQ)
    assert result.user_count >= REQ.k


def test_e2_table(benchmark, record_table):
    def both():
        return run_e2_data_dependent(), run_e2_clique()

    snapshot, clique = benchmark.pedantic(both, rounds=1, iterations=1)
    record_table("E2_data_dependent", snapshot, clique)
