"""Cost-based planner benchmark: emits BENCH_planner.json with a gate.

Run via ``make bench-planner`` (or ``pytest benchmarks -q -k bench_planner``).
One mixed declarative workload — public range windows, exact k-NN probes,
probabilistic counts over degenerate cloaks, and private candidate-set
ranges — is executed three ways over the same server:

* ``planned``          — the cost-based planner chooses backend + route
                         per query (``QueryPlanner.execute_batch``),
* ``static_<backend>`` — every query forced to one index backend on the
                         scalar route (the five static baselines a
                         planner-less system would hard-code),
* ``vectorized``       — every query forced down the kernel route.

The gate is the planner's reason to exist: planned execution must be
strictly faster than the WORST static backend choice on the same
workload.  The report lands in ``BENCH_planner.json`` at the repo root
(CI uploads it; ``make bench-history`` folds it into the trajectory with
direction-aware regression flags on the tracked leaves).
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from bench_envelope import finalize_report
from repro.core.server import LocationServer
from repro.core.stores import PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import Telemetry
from repro.planner import BACKEND_NAMES, QueryPlanner
from repro.queries.spec import CountSpec, KNNSpec, RangeSpec

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_planner.json"

N_PUBLIC = 8_000
N_PRIVATE = 3_000
N_SPECS = 400
WORLD = Rect(0.0, 0.0, 1000.0, 1000.0)
SIDE = 25.0
K = 8

#: mode -> seconds; flushed into the report by the gate test.
_RESULTS: dict[str, float] = {}


@pytest.fixture(scope="module")
def planner() -> QueryPlanner:
    rng = random.Random(20_060_402)
    server = LocationServer(telemetry=Telemetry(enabled=False))
    server.public = PublicStore.from_points(
        {
            i: Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            for i in range(N_PUBLIC)
        }
    )
    # Degenerate cloaks: every backend's point replica is eligible for
    # the count quadrant, so all five static baselines are forceable.
    server.receive_regions(
        {
            f"u{i}": Rect(x, y, x, y)
            for i in range(N_PRIVATE)
            for x in (rng.uniform(0, 1000),)
            for y in (rng.uniform(0, 1000),)
        }
    )
    return QueryPlanner(server, universe=WORLD)


def mixed_specs(n: int = N_SPECS) -> list:
    """The benchmark's mixed workload (private NN/k-NN are pinned to one
    execution, so they carry no planning signal and stay out)."""
    rng = random.Random("planner-bench")
    specs: list = []
    for _ in range(n):
        x = rng.uniform(0, 1000 - SIDE)
        y = rng.uniform(0, 1000 - SIDE)
        choice = rng.randrange(4)
        if choice == 0:
            specs.append(RangeSpec(window=Rect(x, y, x + SIDE, y + SIDE)))
        elif choice == 1:
            specs.append(KNNSpec(point=Point(x, y), k=K))
        elif choice == 2:
            specs.append(CountSpec(window=Rect(x, y, x + SIDE, y + SIDE)))
        else:
            specs.append(
                RangeSpec(
                    flavor="private",
                    region=Rect(x, y, x + SIDE / 2, y + SIDE / 2),
                    radius=10.0,
                    method="exact",
                )
            )
    return specs


def run_mode(planner: QueryPlanner, mode: str) -> float:
    specs = mixed_specs()
    kwargs: dict = {}
    if mode.startswith("static_"):
        kwargs = {"backend": mode.removeprefix("static_"), "route": "scalar"}
    elif mode == "vectorized":
        kwargs = {"route": "vectorized"}
    planner.execute_batch(specs, **kwargs)  # warmup: calibration + replicas
    start = time.perf_counter()
    out = planner.execute_batch(specs, **kwargs)
    elapsed = time.perf_counter() - start
    assert len(out) == len(specs)
    return elapsed


MODES = ["planned", "vectorized"] + [f"static_{b}" for b in BACKEND_NAMES]


@pytest.mark.parametrize("mode", MODES)
def test_planner_vs_static(benchmark, planner, mode):
    laps: list[float] = []

    def run():
        laps.append(run_mode(planner, mode))

    # Self-timed so the report also works under ``--benchmark-disable``.
    benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[mode] = min(laps)


def test_planner_report_and_gate(planner):
    """Fold timings into BENCH_planner.json; planned must beat the worst
    static backend strictly."""
    for mode in MODES:
        if mode not in _RESULTS:  # timing tests deselected: time inline
            _RESULTS[mode] = run_mode(planner, mode)

    modes = {
        mode: {
            "seconds": seconds,
            "queries_per_second": N_SPECS / seconds if seconds else None,
        }
        for mode, seconds in sorted(_RESULTS.items())
    }
    statics = {
        mode: seconds
        for mode, seconds in _RESULTS.items()
        if mode.startswith("static_")
    }
    worst_mode = max(statics, key=statics.get)
    best_mode = min(statics, key=statics.get)
    planned = _RESULTS["planned"]

    report = {
        "workload": {
            "public_objects": N_PUBLIC,
            "private_regions": N_PRIVATE,
            "specs": N_SPECS,
            "window_side": SIDE,
            "k": K,
        },
        "modes": modes,
        "worst_static": worst_mode,
        "best_static": best_mode,
        "speedup_vs_worst_static": (
            statics[worst_mode] / planned if planned else None
        ),
        "speedup_vs_best_static": (
            statics[best_mode] / planned if planned else None
        ),
        "gate": {"planned_beats_worst_static": True},
    }
    finalize_report(report, "repro.planner.bench/1", BENCH_PATH)
    parsed = json.loads(BENCH_PATH.read_text())
    assert parsed["schema"] == "repro.planner.bench/1"
    assert parsed["git_sha"] and parsed["created_at"]

    assert planned < statics[worst_mode], (
        f"planned execution ({planned:.3f}s) does not beat the worst "
        f"static choice {worst_mode} ({statics[worst_mode]:.3f}s); "
        f"see {BENCH_PATH.name}"
    )
