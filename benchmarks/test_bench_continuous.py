"""E12: continuous query maintenance — incremental vs full re-evaluation.

Times one incremental monitor adjustment against one full recompute and
regenerates both E12 tables (maintenance throughput, delta transmission).
"""

import numpy as np
import pytest

from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.evalx.experiments import run_e12_continuous, run_e12_delta_transmission
from repro.evalx.workloads import (
    build_workload,
    cloaked_private_store,
    loaded_cloaker,
    query_windows,
)
from repro.geometry.rect import Rect
from repro.queries.continuous import ContinuousCountMonitor


@pytest.fixture(scope="module")
def setup():
    workload = build_workload(n_users=2000, seed=7)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    private = cloaked_private_store(cloaker, k=20)
    window = query_windows(workload.bounds, 1, 0.25, np.random.default_rng(1))[0]
    monitor = ContinuousCountMonitor(window)
    monitor.seed_from_store(private)
    return private, monitor


def test_e12_incremental_update(benchmark, setup):
    private, monitor = setup
    uid = next(iter(private))
    region = private.region_of(uid)

    def one_update():
        monitor.on_region_update(uid, region.translated(0.5, 0.0))
        monitor.on_region_update(uid, region)

    benchmark(one_update)


def test_e12_full_recompute(benchmark, setup):
    private, monitor = setup
    answer = benchmark(monitor.recompute, private)
    assert answer.expected == pytest.approx(monitor.expected_count)


def test_e12_tables(benchmark, record_table):
    def both():
        return run_e12_continuous(), run_e12_delta_transmission()

    maintenance, delta = benchmark.pedantic(both, rounds=1, iterations=1)
    record_table("E12_continuous", maintenance, delta)
