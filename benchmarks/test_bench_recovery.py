"""Durability benchmark: emits BENCH_recovery.json with a gate.

Run via ``make bench-recovery`` (or ``pytest benchmarks -q -k
bench_recovery``).  One 10k-user durable workload is built with the WAL
attached, checkpointed late (so a realistic short tail remains), then
recovered two ways from the same trail:

* ``checkpointed`` — newest checkpoint + replay of the WAL tail, the
  path a supervised restart takes;
* ``cold``         — full WAL replay from the ``wal-meta.json`` sidecar
  alone, the path of last resort when no checkpoint survived.

The gate is the checkpoint subsystem's reason to exist: checkpointed
recovery must beat cold replay on the same trail, and both must land on
the digest-identical system.  The report (checkpoint write throughput,
both recovery wall-times, speedup) lands in ``BENCH_recovery.json`` at
the repo root; CI uploads it and ``make bench-history`` folds it into
the trajectory.
"""

from __future__ import annotations

import random
import shutil
import time
from pathlib import Path

import pytest

from bench_envelope import finalize_report
from repro import MobileUser, PrivacyProfile, PrivacySystem, PyramidCloaker, RangeSpec
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import Telemetry
from repro.obs.events import PERSIST_CHECKPOINT
from repro.persist import (
    META_NAME,
    WAL_NAME,
    Recovery,
    list_checkpoints,
    system_digest,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"
SCHEMA = "repro.bench.recovery/1"

N_USERS = 10_000
N_POIS = 200
MOVE_USERS = 2_000
TAIL_QUERIES = 50
WORLD = Rect(0.0, 0.0, 1000.0, 1000.0)

_RESULTS: dict = {}


@pytest.fixture(scope="module")
def arena(tmp_path_factory):
    """A durable 10k-user run plus a checkpoint-less copy of its trail."""
    base = tmp_path_factory.mktemp("bench_recovery")
    full = base / "full"
    cold = base / "cold"
    full.mkdir()
    cold.mkdir()

    rng = random.Random(20_060_402)
    system = PrivacySystem(
        WORLD, PyramidCloaker(WORLD, height=7), telemetry=Telemetry()
    )
    system.attach_wal(str(full))
    for j in range(N_POIS):
        system.add_poi(f"poi-{j}", Point(rng.uniform(0, 1000), rng.uniform(0, 1000)))
    for i in range(N_USERS):
        system.add_user(
            MobileUser(
                f"u{i}",
                Point(rng.uniform(0, 1000), rng.uniform(0, 1000)),
                PrivacyProfile.always(k=8),
            )
        )
    system.publish_all(bulk=True)
    system.apply_movement(
        {
            f"u{i}": Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            for i in range(MOVE_USERS)
        }
    )
    system.publish_all(bulk=True)

    started = time.perf_counter()
    system.checkpoint(str(full))
    checkpoint_seconds = time.perf_counter() - started
    # Tail past the checkpoint: what checkpointed recovery must replay.
    for i in range(TAIL_QUERIES):
        system.query(
            RangeSpec(flavor="private", user=f"u{i * 13}", radius=25.0)
        )
    system.obs.events.detach_jsonl()

    # The cold trail: same WAL and sidecar, no checkpoint to lean on.
    for name in (WAL_NAME, META_NAME):
        shutil.copy(full / name, cold / name)

    event = next(iter(system.obs.events.events(PERSIST_CHECKPOINT)))
    wal_lines = sum(1 for _ in open(full / WAL_NAME, encoding="utf-8"))
    return {
        "system": system,
        "full": str(full),
        "cold": str(cold),
        "checkpoint_seconds": checkpoint_seconds,
        "checkpoint_bytes": event.attrs["bytes"],
        "wal_events": wal_lines,
    }


def test_checkpoint_write_throughput(arena):
    seconds = arena["checkpoint_seconds"]
    size = arena["checkpoint_bytes"]
    assert list_checkpoints(arena["full"])
    assert size > 100_000  # 10k users serialise to a non-toy document
    _RESULTS["checkpoint_write"] = {
        "users": N_USERS,
        "seconds": seconds,
        "bytes": size,
        "mb_per_second": size / 1e6 / seconds,
    }


def test_checkpointed_recovery_beats_cold_replay(arena):
    live_digest = system_digest(arena["system"])

    started = time.perf_counter()
    checkpointed = Recovery(arena["full"], telemetry=Telemetry())
    warm = checkpointed.recover()
    warm_seconds = time.perf_counter() - started

    started = time.perf_counter()
    cold_recovery = Recovery(arena["cold"], telemetry=Telemetry())
    cold = cold_recovery.recover()
    cold_seconds = time.perf_counter() - started

    # Correctness gates: both paths land on the uncrashed system.
    assert system_digest(warm) == live_digest
    assert system_digest(cold) == live_digest
    assert checkpointed.report["checkpoint"] is not None
    assert cold_recovery.report["checkpoint"] is None
    assert checkpointed.report["replayed"] < cold_recovery.report["replayed"]

    # "seconds" leaves are what bench-history tracks (lower is better);
    # "speedup" is tracked higher-is-better.
    _RESULTS["recovery"] = {
        "users": N_USERS,
        "wal_events": arena["wal_events"],
        "tail_replayed": checkpointed.report["replayed"],
        "cold_replayed": cold_recovery.report["replayed"],
        "checkpointed": {"seconds": warm_seconds},
        "cold": {"seconds": cold_seconds},
        "speedup": cold_seconds / warm_seconds,
    }
    # Performance gate: the checkpoint must pay for itself.
    assert warm_seconds < cold_seconds, (
        f"checkpointed recovery ({warm_seconds:.3f}s) must beat cold "
        f"replay ({cold_seconds:.3f}s)"
    )


def test_write_report():
    assert set(_RESULTS) == {"checkpoint_write", "recovery"}
    report = finalize_report(_RESULTS, SCHEMA, BENCH_PATH)
    assert report["schema"] == SCHEMA
    assert report["recovery"]["speedup"] > 1.0
