"""Substrate microbenchmarks: the spatial indexes everything runs on.

Not tied to a specific paper figure; they justify the structure choices the
experiment tables depend on (e.g. pyramid counter updates being cheap
enough to pay for O(height) cloaks).
"""

import numpy as np
import pytest

from repro.evalx.workloads import build_workload
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.pyramid import PyramidGrid
from repro.index.quadtree import QuadTree
from repro.index.rtree import RTree

N = 5000
WINDOW = Rect(40, 40, 60, 60)
QUERY_POINT = Point(50, 50)


@pytest.fixture(scope="module")
def points():
    workload = build_workload(n_users=N, seed=7)
    return list(enumerate(workload.users))


def _filled(index, points):
    for i, p in points:
        index.insert_point(i, p)
    return index


def test_bench_rtree_build(benchmark, points):
    def build():
        return _filled(RTree(max_entries=16), points)

    assert len(benchmark(build)) == N


def test_bench_rtree_range(benchmark, points):
    index = _filled(RTree(max_entries=16), points)
    result = benchmark(index.range_query, WINDOW)
    assert result


def test_bench_rtree_knn(benchmark, points):
    index = _filled(RTree(max_entries=16), points)
    result = benchmark(index.nearest, QUERY_POINT, 10)
    assert len(result) == 10


def test_bench_rtree_bulk_load(benchmark, points):
    items = {i: Rect.from_point(p) for i, p in points}

    def build():
        return RTree.bulk_load(items, max_entries=16)

    assert len(benchmark(build)) == N


def test_bench_kdtree_build(benchmark, points):
    def build():
        return KDTree.build(dict(points))

    assert len(benchmark(build)) == N


def test_bench_kdtree_range(benchmark, points):
    index = KDTree.build(dict(points))
    assert benchmark(index.range_query, WINDOW)


def test_bench_kdtree_knn(benchmark, points):
    index = KDTree.build(dict(points))
    assert len(benchmark(index.nearest, QUERY_POINT, 10)) == 10


def test_bench_quadtree_range(benchmark, points):
    index = _filled(QuadTree(Rect(0, 0, 100, 100), capacity=8), points)
    assert benchmark(index.range_query, WINDOW)


def test_bench_grid_range(benchmark, points):
    index = _filled(GridIndex(Rect(0, 0, 100, 100), cols=64), points)
    assert benchmark(index.range_query, WINDOW)


def test_bench_pyramid_update(benchmark, points):
    index = _filled(PyramidGrid(Rect(0, 0, 100, 100), height=8), points)
    a = points[0][1]
    b = points[1][1]

    def move():
        index.delete(0)
        index.insert_point(0, b)
        index.delete(0)
        index.insert_point(0, a)

    benchmark(move)


def test_bench_pyramid_cell_count(benchmark, points):
    index = _filled(PyramidGrid(Rect(0, 0, 100, 100), height=8), points)
    cell = index.cell_rect(4, 7, 7)
    count = benchmark(index.count_in_window, cell)
    assert count == len(index.range_query(cell))
