"""E9: the central privacy/QoS trade-off, end to end.

Times the complete pipeline a single user query traverses (cloak at the
anonymizer -> candidate generation at the server -> client refinement) and
regenerates the k-sweep trade-off table.
"""

import numpy as np
import pytest

from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.profiles import PrivacyProfile
from repro.core.system import PrivacySystem
from repro.evalx.experiments import run_e9_by_algorithm, run_e9_tradeoff
from repro.evalx.workloads import build_workload
from repro.geometry.point import Point
from repro.mobility.users import MobileUser


@pytest.fixture(scope="module")
def system():
    workload = build_workload(n_users=1500, n_pois=300, seed=7)
    system = PrivacySystem(workload.bounds, PyramidCloaker(workload.bounds, height=6))
    for i, p in enumerate(workload.users):
        system.add_user(MobileUser(i, p, PrivacyProfile.always(k=20)))
    for j, p in enumerate(workload.pois):
        system.add_poi(("poi", j), p)
    return system


def test_e9_end_to_end_range_query(benchmark, system):
    outcome, _ = benchmark(system.user_range_query, 0, 5.0)
    assert outcome.correct


def test_e9_end_to_end_nn_query(benchmark, system):
    outcome, _ = benchmark(system.user_nn_query, 0)
    assert outcome.correct


def test_e9_table(benchmark, record_table):
    def both():
        return run_e9_tradeoff(), run_e9_by_algorithm()

    sweep, by_algorithm = benchmark.pedantic(both, rounds=1, iterations=1)
    record_table("E9_tradeoff", sweep, by_algorithm)
