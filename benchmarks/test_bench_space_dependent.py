"""E3 (Figure 4): space-dependent cloaking — quadtree, grid, pyramid.

Times one cloak per algorithm and regenerates the E3 table plus the A3
pyramid ablation (search direction / neighbour merging).
"""

import pytest

from repro.cloaking.grid_cloak import GridCloaker
from repro.cloaking.hilbert import HilbertCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.cloaking.quadtree_cloak import QuadtreeCloaker
from repro.core.profiles import PrivacyRequirement
from repro.evalx.experiments import run_e3_ablation_pyramid, run_e3_space_dependent
from repro.evalx.workloads import build_workload, loaded_cloaker

REQ = PrivacyRequirement(k=20)


@pytest.fixture(scope="module")
def workload():
    return build_workload(n_users=2000, seed=7)


def test_e3_quadtree_cloak(benchmark, workload):
    cloaker = loaded_cloaker(QuadtreeCloaker, workload, capacity=4, max_depth=8)
    assert benchmark(cloaker.cloak, 0, REQ).user_count >= REQ.k


def test_e3_grid_cloak(benchmark, workload):
    cloaker = loaded_cloaker(GridCloaker, workload, cols=64)
    assert benchmark(cloaker.cloak, 0, REQ).user_count >= REQ.k


def test_e3_pyramid_cloak(benchmark, workload):
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    assert benchmark(cloaker.cloak, 0, REQ).user_count >= REQ.k


def test_e3_pyramid_cloak_with_merge(benchmark, workload):
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6, neighbor_merge=True)
    assert benchmark(cloaker.cloak, 0, REQ).user_count >= REQ.k


def test_e3_hilbert_cloak_warm(benchmark, workload):
    cloaker = loaded_cloaker(HilbertCloaker, workload, order=8)
    cloaker.cloak(0, REQ)  # build the sorted order once
    assert benchmark(cloaker.cloak, 0, REQ).user_count >= REQ.k


def test_e3_pyramid_location_update(benchmark, workload):
    """The maintenance cost that pays for O(height) cloaks."""
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    a = workload.users[0]
    b = workload.users[1]

    def move_back_and_forth():
        cloaker.move_user(0, b)
        cloaker.move_user(0, a)

    benchmark(move_back_and_forth)


def test_e3_tables(benchmark, record_table):
    def both():
        return run_e3_space_dependent(), run_e3_ablation_pyramid()

    main, ablation = benchmark.pedantic(both, rounds=1, iterations=1)
    record_table("E3_space_dependent", main, ablation)
