"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates its experiment's table(s) and persists
them under ``benchmarks/results/`` (stdout is captured by pytest, so the
files are the canonical record; EXPERIMENTS.md is assembled from them).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Write experiment tables to ``benchmarks/results/<name>.txt``."""

    def _record(name: str, *tables) -> None:
        text = "\n\n".join(t.to_text() for t in tables)
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return _record
