"""E8 (Figure 6b): public NN over private data + ablation A5 (sample count).

Times the probabilistic NN at several Monte-Carlo sample counts (the
accuracy/cost dial of ablation A5) and regenerates the E8 table plus the
Figure 6b layout example.
"""

import numpy as np
import pytest

from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.evalx.experiments import figure_6b_example, run_e8_public_nn
from repro.evalx.tables import Table
from repro.evalx.workloads import build_workload, cloaked_private_store, loaded_cloaker
from repro.geometry.point import Point
from repro.queries.public_nn import public_nn_query

QUERY = Point(50, 50)


@pytest.fixture(scope="module")
def private_store():
    workload = build_workload(n_users=400, seed=7)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    return cloaked_private_store(cloaker, k=20)


@pytest.mark.parametrize("samples", [256, 1024, 4096])
def test_e8_public_nn(benchmark, private_store, samples):
    rng = np.random.default_rng(3)
    result = benchmark(public_nn_query, private_store, QUERY, samples, rng)
    assert abs(result.answer.total_probability - 1.0) < 1e-9


def test_e8_tables(benchmark, record_table, private_store):
    # Ablation A5: Monte-Carlo convergence of the top-1 probability.
    reference = public_nn_query(
        private_store, QUERY, samples=65536, rng=np.random.default_rng(0)
    )
    top = reference.answer.top
    ablation = Table(
        "E8 ablation (A5): Monte-Carlo convergence of P(top candidate)",
        ["samples", "P_top_estimate", "abs_error_vs_65536"],
    )
    for samples in (128, 512, 2048, 8192):
        estimate = public_nn_query(
            private_store, QUERY, samples=samples, rng=np.random.default_rng(1)
        )
        p = estimate.answer.probabilities.get(top, 0.0)
        ablation.add_row(samples, p, abs(p - reference.answer.probabilities[top]))
    main = benchmark.pedantic(run_e8_public_nn, rounds=1, iterations=1)
    record_table("E8_public_nn", main, figure_6b_example(), ablation)
