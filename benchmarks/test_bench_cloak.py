"""Bulk cloaking throughput benchmark: emits BENCH_cloak.json with a gate.

Run via ``make bench-cloak`` (or ``pytest benchmarks -q -k bench_cloak``).
Whole-population cloaking rounds are pushed through both anonymizer write
paths on identically-built systems:

* ``bulk``     — one vectorized numpy pass + a single server batch push
  (``publish_all_bulk``),
* ``per_user`` — the per-user cloak/publish loop (``publish_all``), the
  differential-testing oracle,

at 1k, 10k and 100k users.  Both modes of a scale share ONE seeded
population draw (positions and privacy requirements come from the same
generator output), so the comparison never benchmarks two different
workloads.  The final test folds the timings into ``BENCH_cloak.json`` at
the repo root (CI uploads it as an artifact, ``make bench-history``
ingests it) and gates: bulk throughput must be at least 3x per-user at
the 10k-user scale.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from bench_envelope import finalize_report
from repro.cloaking.grid_cloak import GridCloaker
from repro.core.profiles import PrivacyProfile
from repro.core.system import PrivacySystem
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.users import MobileUser
from repro.obs import Telemetry

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_cloak.json"

WORLD = Rect(0.0, 0.0, 1000.0, 1000.0)
GRID = 64
SCALES = (1_000, 10_000, 100_000)
GATE_SCALE = 10_000
GATE_SPEEDUP = 3.0
K_MAX = 32
AREA_CHOICES = (0.0, 25.0, 100.0)

#: mode -> n_users -> seconds for one full publication round.
_RESULTS: dict[str, dict[int, float]] = {}

_POPULATIONS: dict[int, list[tuple[str, Point, PrivacyProfile]]] = {}


def population(n: int) -> list[tuple[str, Point, PrivacyProfile]]:
    """One seeded population draw per scale, shared by both modes.

    A single generator produces positions and requirements once; every
    system under test is built from this same list, so bulk and per-user
    timings always cover byte-identical workloads.
    """
    if n not in _POPULATIONS:
        rng = np.random.default_rng(0xC10A + n)
        xs = rng.uniform(0.0, 1000.0, n)
        ys = rng.uniform(0.0, 1000.0, n)
        ks = rng.integers(1, K_MAX + 1, n)
        areas = rng.choice(np.array(AREA_CHOICES), n)
        _POPULATIONS[n] = [
            (
                f"u{i}",
                Point(float(xs[i]), float(ys[i])),
                PrivacyProfile.always(k=int(ks[i]), min_area=float(areas[i])),
            )
            for i in range(n)
        ]
    return _POPULATIONS[n]


def build_system(n: int) -> PrivacySystem:
    system = PrivacySystem(
        bounds=WORLD,
        cloaker=GridCloaker(WORLD, cols=GRID, rows=GRID),
        telemetry=Telemetry(enabled=False),
    )
    for user_id, point, profile in population(n):
        system.add_user(MobileUser(user_id, point, profile))
    return system


def publish_round(system: PrivacySystem, mode: str) -> None:
    system.publish_all(bulk=mode == "bulk")


@pytest.mark.parametrize("n", SCALES)
@pytest.mark.parametrize("mode", ["bulk", "per_user"])
def test_bulk_vs_per_user(benchmark, mode, n):
    system = build_system(n)
    publish_round(system, mode)  # steady state: republish, not first insert
    laps: list[float] = []

    def run():
        start = time.perf_counter()
        publish_round(system, mode)
        laps.append(time.perf_counter() - start)

    # Self-timed so the report also works under ``--benchmark-disable``;
    # the per-user loop at 100k users is measured once to bound runtime.
    rounds = 1 if (mode == "per_user" and n >= 100_000) else 3
    benchmark.pedantic(run, rounds=rounds, iterations=1)
    assert len(system.server.private) == n
    _RESULTS.setdefault(mode, {})[n] = min(laps)


def test_cloak_report_and_gate():
    """Fold timings into BENCH_cloak.json and enforce the 3x gate."""
    if "bulk" not in _RESULTS or "per_user" not in _RESULTS:
        # Timing tests deselected (e.g. ``-k report``): time inline so the
        # report and the gate always reflect a real measurement.
        for mode in ("bulk", "per_user"):
            for n in SCALES:
                if mode == "per_user" and n >= 100_000:
                    continue  # bounded inline runtime; gate scale suffices
                system = build_system(n)
                publish_round(system, mode)
                start = time.perf_counter()
                publish_round(system, mode)
                _RESULTS.setdefault(mode, {})[n] = time.perf_counter() - start

    modes: dict[str, dict] = {}
    for mode, timings in _RESULTS.items():
        modes[mode] = {
            str(n): {
                "seconds": seconds,
                "users_per_second": n / seconds if seconds else None,
            }
            for n, seconds in sorted(timings.items())
        }

    bulk = _RESULTS["bulk"][GATE_SCALE]
    per_user = _RESULTS["per_user"][GATE_SCALE]
    speedup = per_user / bulk if bulk else None

    report = {
        "workload": {
            "scales": [n for n in SCALES if n in _RESULTS["bulk"]],
            "grid": GRID,
            "k_max": K_MAX,
            "area_choices": list(AREA_CHOICES),
            "algo": "grid",
        },
        "modes": modes,
        "speedup_at_gate_scale": speedup,
        "gate": {"scale": GATE_SCALE, "min_speedup": GATE_SPEEDUP},
    }
    finalize_report(report, "repro.cloak.bench/1", BENCH_PATH)
    parsed = json.loads(BENCH_PATH.read_text())
    assert parsed["schema"] == "repro.cloak.bench/1"
    assert parsed["schema_version"] >= 1
    assert parsed["git_sha"] and parsed["created_at"]

    assert speedup is not None and speedup >= GATE_SPEEDUP, (
        f"bulk cloaking is only {speedup:.2f}x per-user at "
        f"{GATE_SCALE} users (gate: >= {GATE_SPEEDUP}x); "
        f"see {BENCH_PATH.name}"
    )
