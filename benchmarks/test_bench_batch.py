"""Batch engine throughput benchmark: emits BENCH_batch.json with a gate.

Run via ``make bench-batch`` (or ``pytest benchmarks -q -k bench_batch``).
The same query workloads — range windows and k-NN probes over a 50k-object
catalogue — are executed through both engine modes on the same snapshot:

* ``batched``     — vectorised grid/broadcast kernels (``vectorize=True``),
* ``sequential``  — the per-query index loop (``vectorize=False``),

at 1k and 10k queries, plus the O(n·m) brute-force oracle on a reduced
batch as the naive baseline.  The final test folds the timings into
``BENCH_batch.json`` at the repo root (CI uploads it as an artifact) and
gates: batched throughput must be at least 2x sequential for both
``public_range`` and ``public_nn`` at the 10k-query scale.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from bench_envelope import finalize_report
from repro.core.server import LocationServer
from repro.core.stores import PublicStore
from repro.engine import BruteForceOracle, PublicNNQuery, PublicRangeQuery
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import Telemetry

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch.json"

N_OBJECTS = 50_000
SCALES = (1_000, 10_000)
GATE_SCALE = 10_000
GATE_SPEEDUP = 2.0
ORACLE_QUERIES = 100
K = 8
SIDE = 10.0  # ~5 objects per 10x10 window at 50 objects / 1000^2 * side^2

#: mode -> kind -> n_queries -> seconds; flushed by the report test.
_RESULTS: dict[str, dict[str, dict[int, float]]] = {}


@pytest.fixture(scope="module")
def server() -> LocationServer:
    rng = random.Random(1234)
    srv = LocationServer(telemetry=Telemetry(enabled=False))
    srv.public = PublicStore.from_points(
        {
            i: Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            for i in range(N_OBJECTS)
        }
    )
    return srv


def make_batch(kind: str, n: int) -> list:
    rng = random.Random(f"{kind}/{n}")  # str seeding is hash-stable
    batch: list = []
    for _ in range(n):
        x, y = rng.uniform(0, 1000 - SIDE), rng.uniform(0, 1000 - SIDE)
        if kind == "public_range":
            batch.append(PublicRangeQuery(Rect(x, y, x + SIDE, y + SIDE)))
        else:
            batch.append(PublicNNQuery(Point(x, y), k=K))
    return batch


@pytest.mark.parametrize("n", SCALES)
@pytest.mark.parametrize("kind", ["public_range", "public_nn"])
@pytest.mark.parametrize("mode", ["batched", "sequential"])
def test_batch_vs_sequential(benchmark, server, mode, kind, n):
    batch = make_batch(kind, n)
    vectorize = mode == "batched"
    laps: list[float] = []

    def run():
        start = time.perf_counter()
        out = server.execute_batch(batch, vectorize=vectorize)
        laps.append(time.perf_counter() - start)
        return out

    # Self-timed so the report also works under ``--benchmark-disable``.
    results = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert len(results) == n
    _RESULTS.setdefault(mode, {}).setdefault(kind, {})[n] = min(laps)


def test_oracle_baseline(benchmark, server):
    """The deliberately-naive O(n*m) reference, on a reduced batch."""
    oracle = BruteForceOracle.from_server(server)
    ranges = make_batch("public_range", ORACLE_QUERIES)
    nns = make_batch("public_nn", ORACLE_QUERIES)

    timings: dict[str, float] = {}

    def run():
        start = time.perf_counter()
        for q in ranges:
            oracle.public_range(q.window)
        timings["public_range"] = time.perf_counter() - start
        start = time.perf_counter()
        for q in nns:
            oracle.public_knn(q.point, q.k)
        timings["public_nn"] = time.perf_counter() - start

    benchmark.pedantic(run, rounds=1, iterations=1)
    for kind, seconds in timings.items():
        _RESULTS.setdefault("oracle", {})[kind] = {ORACLE_QUERIES: seconds}


def test_batch_report_and_gate(server):
    """Fold timings into BENCH_batch.json and enforce the 2x gate."""
    if "batched" not in _RESULTS or "sequential" not in _RESULTS:
        # Timing tests deselected (e.g. ``-k report``): time inline so the
        # report and the gate always reflect a real measurement.
        for mode in ("batched", "sequential"):
            for kind in ("public_range", "public_nn"):
                for n in SCALES:
                    batch = make_batch(kind, n)
                    vectorize = mode == "batched"
                    server.execute_batch(batch, vectorize=vectorize)  # warmup
                    start = time.perf_counter()
                    server.execute_batch(batch, vectorize=vectorize)
                    _RESULTS.setdefault(mode, {}).setdefault(kind, {})[n] = (
                        time.perf_counter() - start
                    )

    modes: dict[str, dict] = {}
    for mode, kinds in _RESULTS.items():
        modes[mode] = {}
        for kind, timings in kinds.items():
            modes[mode][kind] = {
                str(n): {
                    "seconds": seconds,
                    "queries_per_second": n / seconds if seconds else None,
                }
                for n, seconds in sorted(timings.items())
            }

    speedups = {}
    for kind in ("public_range", "public_nn"):
        batched = _RESULTS["batched"][kind][GATE_SCALE]
        sequential = _RESULTS["sequential"][kind][GATE_SCALE]
        speedups[kind] = sequential / batched if batched else None

    report = {
        "workload": {
            "objects": N_OBJECTS,
            "scales": list(SCALES),
            "window_side": SIDE,
            "k": K,
            "oracle_queries": ORACLE_QUERIES,
        },
        "modes": modes,
        "speedup_at_gate_scale": speedups,
        "gate": {"scale": GATE_SCALE, "min_speedup": GATE_SPEEDUP},
    }
    finalize_report(report, "repro.engine.bench/1", BENCH_PATH)
    parsed = json.loads(BENCH_PATH.read_text())
    assert parsed["schema"] == "repro.engine.bench/1"
    assert parsed["schema_version"] >= 1
    assert parsed["git_sha"] and parsed["created_at"]

    for kind, speedup in speedups.items():
        assert speedup is not None and speedup >= GATE_SPEEDUP, (
            f"batched {kind} is only {speedup:.2f}x sequential at "
            f"{GATE_SCALE} queries (gate: >= {GATE_SPEEDUP}x); "
            f"see {BENCH_PATH.name}"
        )
